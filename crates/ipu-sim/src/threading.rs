//! Worker-thread scheduling within one tile — the IPUTHREADING analogue.
//!
//! A Mk2 tile runs six hardware worker threads. The paper's Level-Set
//! Scheduled solvers (§V-A) initially synchronised levels with one Poplar
//! compute set per level, which exploded graph compile time; their
//! IPUTHREADING library instead spawns workers once per codelet and inserts
//! lightweight `sync` barriers between levels (`run`/`runall`/`sync`
//! instructions). This module reproduces that scheme: it partitions the
//! work items of each level across the workers (deterministic greedy LPT)
//! and costs the result as
//!
//! ```text
//! spawn + Σ_levels ( max_worker(Σ item cycles) + worker_sync )
//! ```

use crate::cost::CostModel;
use crate::model::WorkerId;

/// Assignment of work items (by index) to workers, per level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LevelSchedule {
    /// `assignments[level][worker]` = indices of the items that worker
    /// executes in that level.
    pub assignments: Vec<Vec<Vec<usize>>>,
    pub num_workers: usize,
}

impl LevelSchedule {
    /// Build a schedule for `levels` (each a list of item indices) where
    /// item `i` costs `cost(i)` cycles. Within each level items are
    /// assigned longest-processing-time-first to the least-loaded worker —
    /// deterministic and within 4/3 of the optimal makespan.
    pub fn build(
        levels: &[Vec<usize>],
        num_workers: usize,
        mut cost: impl FnMut(usize) -> u64,
    ) -> Self {
        assert!(num_workers > 0);
        let mut assignments = Vec::with_capacity(levels.len());
        for level in levels {
            let mut items: Vec<(usize, u64)> = level.iter().map(|&i| (i, cost(i))).collect();
            // LPT: heaviest first; ties broken by index for determinism.
            items.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            let mut loads = vec![0u64; num_workers];
            let mut per_worker: Vec<Vec<usize>> = vec![Vec::new(); num_workers];
            for (idx, c) in items {
                let w = least_loaded(&loads);
                loads[w] += c;
                per_worker[w].push(idx);
            }
            assignments.push(per_worker);
        }
        LevelSchedule { assignments, num_workers }
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.assignments.len()
    }

    /// Total cycles for one execution of this schedule on one tile.
    pub fn cycles(&self, mut cost: impl FnMut(usize) -> u64, cm: &CostModel) -> u64 {
        let mut total = cm.worker_spawn_cycles;
        for level in &self.assignments {
            let makespan = level
                .iter()
                .map(|items| items.iter().map(|&i| cost(i)).sum::<u64>())
                .max()
                .unwrap_or(0);
            total += makespan + cm.worker_sync_cycles;
        }
        total
    }

    /// The order in which items must be executed to respect level
    /// dependencies when the schedule is run by a *sequential* interpreter
    /// standing in for the six workers: levels in order; within a level any
    /// order is valid (we use worker-major order).
    pub fn sequential_order(&self) -> Vec<usize> {
        let mut order = Vec::new();
        for level in &self.assignments {
            for items in level {
                order.extend_from_slice(items);
            }
        }
        order
    }

    /// Worker utilisation of the most imbalanced level, in [0, 1].
    pub fn worst_level_balance(&self, mut cost: impl FnMut(usize) -> u64) -> f64 {
        let mut worst = 1.0f64;
        for level in &self.assignments {
            let loads: Vec<u64> =
                level.iter().map(|items| items.iter().map(|&i| cost(i)).sum()).collect();
            let max = *loads.iter().max().unwrap_or(&0);
            if max == 0 {
                continue;
            }
            let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
            worst = worst.min(mean / max as f64);
        }
        worst
    }
}

fn least_loaded(loads: &[u64]) -> WorkerId {
    let mut best = 0;
    for (w, &l) in loads.iter().enumerate() {
        if l < loads[best] {
            best = w;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_level_balances_uniform_work() {
        let levels = vec![(0..12).collect::<Vec<_>>()];
        let s = LevelSchedule::build(&levels, 6, |_| 10);
        let cm = CostModel::default();
        // 12 items of 10 cycles over 6 workers -> makespan 20.
        assert_eq!(s.cycles(|_| 10, &cm), cm.worker_spawn_cycles + 20 + cm.worker_sync_cycles);
        assert!((s.worst_level_balance(|_| 10) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lpt_handles_skewed_costs() {
        // One heavy item + many light ones: LPT puts the heavy one alone.
        let levels = vec![vec![0, 1, 2, 3, 4, 5, 6]];
        let cost = |i: usize| if i == 0 { 60 } else { 10 };
        let s = LevelSchedule::build(&levels, 6, cost);
        let cm = CostModel::default();
        // Optimal makespan: 60 (heavy alone) since 6 light items spread as
        // 10+10 on some workers -> max(60, 20) = 60.
        assert_eq!(s.cycles(cost, &cm), cm.worker_spawn_cycles + 60 + cm.worker_sync_cycles);
    }

    #[test]
    fn levels_serialise() {
        let levels = vec![vec![0], vec![1], vec![2]];
        let s = LevelSchedule::build(&levels, 6, |_| 100);
        let cm = CostModel::default();
        assert_eq!(
            s.cycles(|_| 100, &cm),
            cm.worker_spawn_cycles + 3 * (100 + cm.worker_sync_cycles)
        );
        assert_eq!(s.num_levels(), 3);
    }

    #[test]
    fn sequential_order_respects_levels() {
        let levels = vec![vec![3, 1], vec![0, 2]];
        let s = LevelSchedule::build(&levels, 2, |_| 1);
        let order = s.sequential_order();
        assert_eq!(order.len(), 4);
        let pos = |x: usize| order.iter().position(|&i| i == x).unwrap();
        // Level 0 items before level 1 items.
        assert!(pos(3) < pos(0));
        assert!(pos(1) < pos(2));
    }

    #[test]
    fn schedule_covers_all_items_exactly_once() {
        let levels = vec![(0..7).collect::<Vec<_>>(), (7..20).collect::<Vec<_>>()];
        let s = LevelSchedule::build(&levels, 6, |i| (i as u64 % 5) + 1);
        let mut seen: Vec<usize> = s.sequential_order();
        seen.sort_unstable();
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn more_workers_never_slower() {
        let levels = vec![(0..40).collect::<Vec<_>>()];
        let cost = |i: usize| (i as u64 % 7) + 3;
        let cm = CostModel::default();
        let s1 = LevelSchedule::build(&levels, 1, cost).cycles(cost, &cm);
        let s6 = LevelSchedule::build(&levels, 6, cost).cycles(cost, &cm);
        assert!(s6 < s1);
        // And roughly 6x for uniform-ish work.
        let ratio = (s1 - cm.worker_spawn_cycles) as f64 / (s6 - cm.worker_spawn_cycles) as f64;
        assert!(ratio > 4.0, "ratio {ratio}");
    }
}
