//! # graphene-json — a small, dependency-free JSON library
//!
//! The workspace needs JSON in three places: the recursive solver
//! configuration (paper §V), the machine-readable [`SolveReport`]s the
//! bench binaries emit, and the Chrome trace-event files the profiler
//! writes. The build image has no crates-registry access, so instead of
//! `serde`/`serde_json` this crate provides a compact value type
//! ([`Json`]), a strict recursive-descent parser with positioned errors,
//! and compact/pretty printers.
//!
//! [`SolveReport`]: https://docs.rs/graphene-profile
//!
//! Numbers are stored as `f64`; integral values with magnitude below 2⁵³
//! round-trip exactly (device cycle counts stay far below that bound —
//! 2⁵³ cycles is ~78 days of Mk2 device time).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Objects preserve insertion order (readable reports).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// A parse error with 1-based line/column position.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    pub msg: String,
    pub line: usize,
    pub col: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Build an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    // ------------------------------------------------------------------
    // Access
    // ------------------------------------------------------------------

    /// Object field by key (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Object fields as an ordered map (convenience for diffing).
    pub fn to_map(&self) -> Option<BTreeMap<&str, &Json>> {
        match self {
            Json::Obj(pairs) => Some(pairs.iter().map(|(k, v)| (k.as_str(), v)).collect()),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Parse / print
    // ------------------------------------------------------------------

    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    // Compact single-line rendering is `Display` (so `to_string()` comes
    // from the blanket `ToString` impl rather than shadowing it).

    /// Pretty rendering with 2-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => out.push_str(&format_number(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

/// Format an f64 as JSON: integers without a fraction, others with Rust's
/// shortest round-trip representation. Non-finite values (not expressible
/// in JSON) become `null`.
fn format_number(n: f64) -> String {
    if !n.is_finite() {
        return "null".into();
    }
    if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        format!("{}", n as i64)
    } else {
        let s = format!("{n:?}"); // shortest round-trip
        s
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------------
// Parser
// ----------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        let (mut line, mut col) = (1, 1);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        JsonError { msg: msg.into(), line, col }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(format!("unexpected character '{}'", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("bad codepoint"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("bad codepoint"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let start = self.pos;
                    let len = utf8_len(self.bytes[start]);
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_before = self.eat_digits();
        if digits_before == 0 {
            return Err(self.err("expected digit"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.eat_digits() == 0 {
                return Err(self.err("expected digit after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if self.eat_digits() == 0 {
                return Err(self.err("expected digit in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err(format!("invalid number '{text}'")))
    }

    fn eat_digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        self.pos - start
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

// ----------------------------------------------------------------------
// From conversions
// ----------------------------------------------------------------------

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<f32> for Json {
    fn from(v: f32) -> Json {
        Json::Num(v as f64)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<i32> for Json {
    fn from(v: i32) -> Json {
        Json::Num(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map(Into::into).unwrap_or(Json::Null)
    }
}

impl fmt::Display for Json {
    /// Compact single-line rendering (what `to_string()` produces).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(Json::parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested() {
        let v = Json::parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert!(arr[2].get("b").unwrap().is_null());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("'single'").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn error_positions() {
        let e = Json::parse("{\n  \"a\": @\n}").unwrap_err();
        assert_eq!((e.line, e.col), (2, 8));
    }

    #[test]
    fn round_trips_compact_and_pretty() {
        let text = r#"{"solver":{"type":"mpir","rel_tol":1e-13,"inner":{"iters":100}},"ok":true,"xs":[1,2.5,-3]}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        assert_eq!(Json::parse(&v.to_pretty()).unwrap(), v);
    }

    #[test]
    fn numbers_round_trip() {
        for n in [0.0, -0.0, 1.0, -1.5, 1e-13, 1e300, 123456789.123, 2f64.powi(52)] {
            let s = Json::Num(n).to_string();
            let back = Json::parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back, n, "{s}");
        }
        // Large u64 cycle counts survive.
        let cycles: u64 = 1_234_567_890_123;
        let v = Json::from(cycles);
        assert_eq!(Json::parse(&v.to_string()).unwrap().as_u64(), Some(cycles));
    }

    #[test]
    fn escapes_round_trip() {
        let s = "quote\" slash\\ newline\n tab\t unicode→ \u{1F600} ctrl\u{01}";
        let v = Json::Str(s.into());
        assert_eq!(Json::parse(&v.to_string()).unwrap().as_str(), Some(s));
    }

    #[test]
    fn surrogate_pair_parses() {
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        assert!(Json::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn object_order_preserved() {
        let v = Json::obj([("z", Json::from(1u64)), ("a", Json::from(2u64))]);
        assert!(v.to_string().find("\"z\"").unwrap() < v.to_string().find("\"a\"").unwrap());
    }

    #[test]
    fn non_finite_serialises_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }
}
