//! Compile-time reporting: what the graph compiler's pass pipeline did.
//!
//! Poplar's compiler reports its lowering and optimisation work through
//! PopVision's compilation summary; this is the simulator's equivalent. A
//! [`CompileReport`] is produced by `Graph::compile` (crate `graphene-graph`)
//! each time a program is lowered to its `ExecPlan`, records one
//! [`PassStat`] per optimisation pass, and is stamped into
//! [`SolveReport`](crate::SolveReport) under `"compile"` so results files
//! capture *how* the executed plan was built.
//!
//! Schema:
//!
//! ```json
//! {
//!   "optimised": true,
//!   "source_steps": 123,
//!   "plan_steps": 98,
//!   "passes": [
//!     { "name": "broadcast-planning", "steps_before": 123,
//!       "steps_after": 123, "counters": { "broadcast_copies": 40 } },
//!     ...
//!   ]
//! }
//! ```

use json::Json;

/// What one compiler pass did to the plan.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PassStat {
    /// Pass name, e.g. `"exchange-coalescing"`.
    pub name: String,
    /// Executable plan steps before the pass ran.
    pub steps_before: usize,
    /// Executable plan steps after the pass ran.
    pub steps_after: usize,
    /// Free-form pass-specific counters (copies deduped, regions merged,
    /// dead tensors found, ...), in insertion order.
    pub counters: Vec<(String, u64)>,
}

impl PassStat {
    pub fn new(name: impl Into<String>, steps_before: usize) -> PassStat {
        let steps_before = steps_before;
        PassStat {
            name: name.into(),
            steps_before,
            steps_after: steps_before,
            counters: Vec::new(),
        }
    }

    /// Add (or accumulate into) a named counter.
    pub fn count(&mut self, key: &str, n: u64) {
        match self.counters.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v += n,
            None => self.counters.push((key.to_string(), n)),
        }
    }

    /// Value of a named counter (0 when absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.iter().find(|(k, _)| k == key).map(|&(_, v)| v).unwrap_or(0)
    }
}

/// Summary of one `Graph::compile` invocation: the lowering and every
/// optimisation pass that ran over the resulting plan.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CompileReport {
    /// Whether the optimising passes ran (`false` under `GRAPHENE_NO_OPT=1`
    /// or `CompileOptions { optimise: false, .. }`).
    pub optimised: bool,
    /// `Prog::num_steps()` of the source program tree.
    pub source_steps: usize,
    /// Executable steps in the final plan (control-flow arena nodes
    /// excluded) — what the engine actually dispatches per traversal.
    pub plan_steps: usize,
    /// One entry per pass, in execution order.
    pub passes: Vec<PassStat>,
}

impl CompileReport {
    /// Look up a pass by name.
    pub fn pass(&self, name: &str) -> Option<&PassStat> {
        self.passes.iter().find(|p| p.name == name)
    }

    /// Total steps removed across all passes.
    pub fn steps_removed(&self) -> usize {
        self.passes.iter().map(|p| p.steps_before.saturating_sub(p.steps_after)).sum()
    }

    /// A short human-readable summary, one line per pass.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "compile: {} source steps -> {} plan steps ({})\n",
            self.source_steps,
            self.plan_steps,
            if self.optimised { "optimised" } else { "unoptimised" },
        ));
        for p in &self.passes {
            out.push_str(&format!(
                "  pass {:<24} {:>5} -> {:<5}",
                p.name, p.steps_before, p.steps_after
            ));
            for (k, v) in &p.counters {
                out.push_str(&format!("  {k}={v}"));
            }
            out.push('\n');
        }
        out
    }

    // ------------------------------------------------------------------
    // JSON
    // ------------------------------------------------------------------

    pub fn to_value(&self) -> Json {
        Json::obj([
            ("optimised", Json::Bool(self.optimised)),
            ("source_steps", Json::from(self.source_steps)),
            ("plan_steps", Json::from(self.plan_steps)),
            (
                "passes",
                Json::arr(self.passes.iter().map(|p| {
                    Json::obj([
                        ("name", Json::from(p.name.as_str())),
                        ("steps_before", Json::from(p.steps_before)),
                        ("steps_after", Json::from(p.steps_after)),
                        (
                            "counters",
                            Json::Obj(
                                p.counters
                                    .iter()
                                    .map(|(k, v)| (k.clone(), Json::from(*v)))
                                    .collect(),
                            ),
                        ),
                    ])
                })),
            ),
        ])
    }

    pub fn from_value(v: &Json) -> Result<CompileReport, String> {
        let u64_of = |v: &Json, k: &str| -> Result<u64, String> {
            v.get(k).and_then(Json::as_u64).ok_or_else(|| format!("missing integer '{k}'"))
        };
        let passes = v
            .get("passes")
            .and_then(Json::as_arr)
            .map(|arr| {
                arr.iter()
                    .map(|p| {
                        Ok(PassStat {
                            name: p
                                .get("name")
                                .and_then(Json::as_str)
                                .ok_or("missing pass name")?
                                .to_string(),
                            steps_before: u64_of(p, "steps_before")? as usize,
                            steps_after: u64_of(p, "steps_after")? as usize,
                            counters: p
                                .get("counters")
                                .and_then(Json::as_obj)
                                .map(|o| {
                                    o.iter()
                                        .map(|(k, v)| {
                                            Ok((k.clone(), v.as_u64().ok_or("bad counter value")?))
                                        })
                                        .collect::<Result<Vec<_>, String>>()
                                })
                                .transpose()?
                                .unwrap_or_default(),
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()
            })
            .transpose()?
            .unwrap_or_default();
        Ok(CompileReport {
            optimised: v.get("optimised").and_then(Json::as_bool).unwrap_or(false),
            source_steps: u64_of(v, "source_steps")? as usize,
            plan_steps: u64_of(v, "plan_steps")? as usize,
            passes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CompileReport {
        let mut p1 = PassStat::new("broadcast-planning", 10);
        p1.count("broadcast_copies", 7);
        p1.count("broadcast_copies", 3);
        let mut p2 = PassStat::new("cleanup", 10);
        p2.steps_after = 8;
        p2.count("nops_removed", 2);
        CompileReport { optimised: true, source_steps: 12, plan_steps: 8, passes: vec![p1, p2] }
    }

    #[test]
    fn counters_accumulate() {
        let r = sample();
        assert_eq!(r.pass("broadcast-planning").unwrap().counter("broadcast_copies"), 10);
        assert_eq!(r.pass("cleanup").unwrap().counter("missing"), 0);
        assert_eq!(r.steps_removed(), 2);
    }

    #[test]
    fn json_round_trip() {
        let r = sample();
        let back = CompileReport::from_value(&Json::parse(&r.to_value().to_pretty()).unwrap());
        assert_eq!(back.unwrap(), r);
    }

    #[test]
    fn render_mentions_every_pass() {
        let text = sample().render();
        assert!(text.contains("broadcast-planning"));
        assert!(text.contains("cleanup"));
        assert!(text.contains("nops_removed=2"));
        assert!(text.contains("optimised"));
    }
}
