//! # graphene-profile — PopVision for the simulated IPU
//!
//! Poplar ships with PopVision, a graph/system analyser that shows BSP
//! execution as a timeline of compute sets, exchanges and syncs, per-tile
//! utilisation, and cycle breakdowns. This crate is the simulator's
//! equivalent, built on the deterministic cycle counts of
//! [`ipu_sim::clock::CycleStats`]:
//!
//! * [`TraceRecorder`] — an event recorder the execution engine drives in
//!   lock-step with its cycle accounting. Serialises to Chrome
//!   trace-event JSON ([`TraceRecorder::to_chrome_trace`]) loadable in
//!   Perfetto / `chrome://tracing`: one lane for device steps, one for the
//!   nested label slices, and one lane per (capped) tile.
//! * [`text_report`] — a PopVision-style text report: phase breakdown,
//!   hottest labels and compute sets, tile-utilisation histogram,
//!   exchange-volume tables.
//! * [`SolveReport`] — a machine-readable JSON record of one solve
//!   (config, convergence history, cycle/phase/label breakdown) whose
//!   per-label cycle totals partition `device_cycles` exactly.
//!
//! Everything is gated behind explicit opt-in: the engine records nothing
//! unless a recorder is attached, and the host APIs check the
//! `GRAPHENE_TRACE` / `GRAPHENE_REPORT` environment variables (see
//! [`trace_path_from_env`] / [`report_dir_from_env`]).

mod compile_report;
pub mod metrics;
pub mod perf;
mod report;
mod resilience;
mod solve_report;
mod trace;

pub use compile_report::{CompileReport, PassStat};
pub use metrics::{Histogram, Metrics};
pub use perf::{PerfRecorder, PerfReport, SpeedOfLight, StepKind, StepMeta, StepReport};
pub use report::text_report;
pub use resilience::{DetectionRecord, Resilience};
pub use solve_report::{
    BackendInfo, CycleBreakdown, LabelEntry, SolveReport, TileUtil, SCHEMA_VERSION, UNLABELLED,
};
pub use trace::{parse_tile_lanes, ExchangeRecord, Lane, TraceEvent, TraceRecorder};

use std::path::PathBuf;

/// Path of the Chrome trace to write, from `GRAPHENE_TRACE` (unset or
/// empty: tracing disabled).
pub fn trace_path_from_env() -> Option<PathBuf> {
    match std::env::var("GRAPHENE_TRACE") {
        Ok(v) if !v.is_empty() => Some(PathBuf::from(v)),
        _ => None,
    }
}

/// Directory for JSON solve reports, from `GRAPHENE_REPORT` (unset or
/// empty: reporting disabled).
pub fn report_dir_from_env() -> Option<PathBuf> {
    match std::env::var("GRAPHENE_REPORT") {
        Ok(v) if !v.is_empty() => Some(PathBuf::from(v)),
        _ => None,
    }
}

static TRACE_SEQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Like [`trace_path_from_env`], but sequence-numbered: the first call in
/// a process returns the path verbatim, the `n`-th (n ≥ 1) inserts `-n`
/// before the extension (`fig5.trace.json` → `fig5.trace-1.json`), so a
/// binary that runs the device several times keeps one trace per run
/// instead of clobbering the same file.
pub fn next_trace_path() -> Option<PathBuf> {
    let base = trace_path_from_env()?;
    let n = TRACE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    if n == 0 {
        return Some(base);
    }
    let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
    let name = match base.extension().and_then(|e| e.to_str()) {
        Some(ext) => format!("{stem}-{n}.{ext}"),
        None => format!("{stem}-{n}"),
    };
    Some(base.with_file_name(name))
}

/// Write a Chrome trace and its companion text report (`*.report.txt`)
/// for one finished run; used by both `runner::solve` and the bench
/// measurement helpers. Failures go to stderr — profiling must never
/// fail the run it observes.
pub fn write_trace_artifacts(
    path: &std::path::Path,
    trace: &TraceRecorder,
    stats: &ipu_sim::clock::CycleStats,
    perf: Option<&PerfReport>,
    top_k: usize,
) -> String {
    match trace.write_chrome_trace(path) {
        Ok(()) => eprintln!("[graphene] chrome trace written to {}", path.display()),
        Err(e) => eprintln!("[graphene] failed to write trace {}: {e}", path.display()),
    }
    let mut report = text_report(stats, Some(trace), top_k);
    if let Some(p) = perf {
        report.push('\n');
        report.push_str(&p.render(top_k));
    }
    let report_path = path.with_extension("report.txt");
    match std::fs::write(&report_path, &report) {
        Ok(()) => eprintln!("[graphene] profile report written to {}", report_path.display()),
        Err(e) => {
            eprintln!("[graphene] failed to write report {}: {e}", report_path.display())
        }
    }
    report
}
