//! A dependency-free metrics registry: counters, gauges, fixed-bucket
//! histograms.
//!
//! This is the substrate the serving layer (ROADMAP item 3) will export —
//! deliberately tiny, deterministic, and JSON-serialisable with the
//! workspace's own `json` crate. `runner::solve` feeds it host-side
//! observations (attempt latency, retries, checkpoints); nothing here
//! touches device cycles.
//!
//! Names are free-form dotted strings (`"solve.attempts"`). Storage is
//! `BTreeMap`, so iteration order — and therefore serialised output — is
//! deterministic regardless of registration order.

use json::Json;
use std::collections::BTreeMap;

/// A fixed-bucket histogram: `counts[i]` holds observations `v ≤
/// bounds[i]` (first matching bucket), with one implicit overflow bucket
/// at the end, plus an exact running sum/count for mean recovery.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    /// Upper bounds of the finite buckets, ascending.
    pub bounds: Vec<f64>,
    /// One count per bound, plus a final overflow bucket:
    /// `counts.len() == bounds.len() + 1`.
    pub counts: Vec<u64>,
    pub sum: f64,
    pub count: u64,
}

impl Histogram {
    pub fn new(bounds: &[f64]) -> Histogram {
        Histogram { bounds: bounds.to_vec(), counts: vec![0; bounds.len() + 1], sum: 0.0, count: 0 }
    }

    pub fn observe(&mut self, v: f64) {
        let idx = self.bounds.iter().position(|b| v <= *b).unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`) by linear interpolation
    /// inside the bucket holding the target rank — the standard
    /// fixed-bucket estimator (what the serving layer reports as
    /// p50/p99). The first bucket interpolates from 0 (observations are
    /// non-negative latencies); ranks landing in the overflow bucket
    /// clamp to the last finite bound, since the histogram cannot know
    /// how far past it they went.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = cum + c;
            if next as f64 >= target && c > 0 {
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let Some(&hi) = self.bounds.get(i) else {
                    return lo; // overflow bucket: clamp to the last bound
                };
                return lo + (target - cum as f64) / c as f64 * (hi - lo);
            }
            cum = next;
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }
}

/// The registry. Cheap to clone, `Default` is empty.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics::default()
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Add `delta` to a monotonic counter (created at 0 on first use).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set a gauge to its latest value.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Observe `v` into the named histogram, creating it with `bounds` on
    /// first use (later calls ignore `bounds`).
    pub fn observe(&mut self, name: &str, bounds: &[f64], v: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(v);
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    // ------------------------------------------------------------------
    // JSON
    // ------------------------------------------------------------------

    pub fn to_value(&self) -> Json {
        Json::obj([
            (
                "counters",
                Json::Obj(self.counters.iter().map(|(k, v)| (k.clone(), Json::from(*v))).collect()),
            ),
            (
                "gauges",
                Json::Obj(self.gauges.iter().map(|(k, v)| (k.clone(), Json::from(*v))).collect()),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| {
                            (
                                k.clone(),
                                Json::obj([
                                    ("bounds", Json::arr(h.bounds.iter().map(|b| Json::from(*b)))),
                                    ("counts", Json::arr(h.counts.iter().map(|c| Json::from(*c)))),
                                    ("sum", Json::from(h.sum)),
                                    ("count", Json::from(h.count)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }

    pub fn from_value(v: &Json) -> Result<Metrics, String> {
        let mut m = Metrics::new();
        if let Some(obj) = v.get("counters").and_then(Json::as_obj) {
            for (k, c) in obj {
                m.counters
                    .insert(k.clone(), c.as_u64().ok_or_else(|| format!("bad counter '{k}'"))?);
            }
        }
        if let Some(obj) = v.get("gauges").and_then(Json::as_obj) {
            for (k, g) in obj {
                m.gauges.insert(k.clone(), g.as_f64().ok_or_else(|| format!("bad gauge '{k}'"))?);
            }
        }
        if let Some(obj) = v.get("histograms").and_then(Json::as_obj) {
            for (k, h) in obj {
                let bounds = h
                    .get("bounds")
                    .and_then(Json::as_arr)
                    .map(|a| a.iter().filter_map(Json::as_f64).collect::<Vec<_>>())
                    .ok_or_else(|| format!("bad histogram bounds '{k}'"))?;
                let counts = h
                    .get("counts")
                    .and_then(Json::as_arr)
                    .map(|a| a.iter().filter_map(Json::as_u64).collect::<Vec<_>>())
                    .ok_or_else(|| format!("bad histogram counts '{k}'"))?;
                if counts.len() != bounds.len() + 1 {
                    return Err(format!("histogram '{k}' bucket count mismatch"));
                }
                m.histograms.insert(
                    k.clone(),
                    Histogram {
                        bounds,
                        counts,
                        sum: h.get("sum").and_then(Json::as_f64).unwrap_or(0.0),
                        count: h.get("count").and_then(Json::as_u64).unwrap_or(0),
                    },
                );
            }
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut m = Metrics::new();
        assert!(m.is_empty());
        m.counter_add("solve.attempts", 1);
        m.counter_add("solve.attempts", 2);
        m.gauge_set("solve.iterations", 42.0);
        m.gauge_set("solve.iterations", 43.0);
        assert_eq!(m.counter("solve.attempts"), 3);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge("solve.iterations"), Some(43.0));
        assert!(!m.is_empty());
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut m = Metrics::new();
        let bounds = [0.001, 0.01, 0.1];
        for v in [0.0005, 0.002, 0.05, 0.5, 5.0] {
            m.observe("host_seconds", &bounds, v);
        }
        let h = m.histogram("host_seconds").unwrap();
        assert_eq!(h.counts, vec![1, 1, 1, 2]);
        assert_eq!(h.count, 5);
        assert!((h.mean() - 5.5525 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles_interpolate_and_clamp() {
        let mut h = Histogram::new(&[10.0, 100.0, 1000.0]);
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram");
        // 10 observations spread evenly through the first bucket.
        for _ in 0..10 {
            h.observe(5.0);
        }
        assert!((h.quantile(0.5) - 5.0).abs() < 1e-9);
        assert!((h.quantile(1.0) - 10.0).abs() < 1e-9);
        // An overflow observation clamps to the last finite bound.
        h.observe(1e9);
        assert!((h.quantile(1.0) - 1000.0).abs() < 1e-9);
        // Quantiles are monotone in q.
        let qs: Vec<f64> = [0.1, 0.5, 0.9, 0.99].iter().map(|&q| h.quantile(q)).collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
    }

    #[test]
    fn json_round_trip() {
        let mut m = Metrics::new();
        m.counter_add("a", 7);
        m.gauge_set("g", 2.5);
        m.observe("h", &[1.0, 10.0], 3.0);
        m.observe("h", &[1.0, 10.0], 30.0);
        let back = Metrics::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
        // Serialised output is deterministic: BTreeMap ordering.
        assert_eq!(m.to_value().to_pretty(), back.to_value().to_pretty());
    }
}
