//! Plan-aware performance attribution ("graphene-scope").
//!
//! The engine's [`CycleStats`] answers *what phase/label* cycles went to;
//! this module answers *which `ExecPlan` step, compute set, and tile*.
//! The execution engine drives a [`PerfRecorder`] in lock-step with its
//! cycle accounting: every planned step that charges device cycles also
//! stamps them onto its `StepId`, so per-step totals **partition
//! `device_cycles` exactly** — the same invariant style as the label
//! accounting, and tested property-style over random programs.
//!
//! From the raw recorder plus static per-step metadata
//! ([`StepMeta`], built by the graph crate from the `ExecPlan`) a
//! [`PerfReport`] derives:
//!
//! * per-step cycle/byte/sync attribution mapped back to source labels;
//! * load-imbalance analysis per compute set — makespan vs mean tile
//!   cycles, imbalance %, top-k hottest tiles;
//! * exchange-congestion tables — bytes per link class (on-chip fabric vs
//!   IPU-Link), region counts, broadcast fan-out;
//! * a roofline summary — flops, SRAM bytes, arithmetic intensity and
//!   achieved-vs-peak throughput per step;
//! * a speed-of-light "what-if": device cycles under perfect tile balance
//!   and/or zero exchange.
//!
//! Everything is host-side observation: attaching a recorder never
//! changes device cycle totals, and the report is bit-identical across
//! the sequential and parallel host executors (all aggregation is
//! order-independent integer arithmetic; derived floats are computed from
//! identical integers by identical expressions).
//!
//! [`CycleStats`]: ipu_sim::clock::CycleStats

use crate::metrics::Metrics;
use json::Json;

/// What kind of plan step a [`StepMeta`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepKind {
    /// A compute set execution (optionally with a broadcast exchange).
    Execute,
    /// A data exchange (one or more coalesced phases).
    Exchange,
    /// An on-tile tensor copy.
    Copy,
    /// Control flow that charges sync cycles (`If`/`While` conditions).
    Control,
}

impl StepKind {
    pub fn as_str(self) -> &'static str {
        match self {
            StepKind::Execute => "execute",
            StepKind::Exchange => "exchange",
            StepKind::Copy => "copy",
            StepKind::Control => "control",
        }
    }

    pub fn from_str(s: &str) -> Option<StepKind> {
        match s {
            "execute" => Some(StepKind::Execute),
            "exchange" => Some(StepKind::Exchange),
            "copy" => Some(StepKind::Copy),
            "control" => Some(StepKind::Control),
            _ => None,
        }
    }
}

/// Static, per-execution metadata for one plan step, derived from the
/// `ExecPlan` by `graphene-graph` (which knows the plan/graph types this
/// crate must not depend on).
#[derive(Clone, Debug)]
pub struct StepMeta {
    pub id: usize,
    pub kind: StepKind,
    /// Compute-set / exchange / copy name.
    pub name: String,
    /// Innermost enclosing source label ([`crate::UNLABELLED`] outside any).
    pub label: String,
    /// Distinct exchange regions moved per execution of this step.
    pub regions: u64,
    /// Broadcast fan-out: max destination copies sharing one source
    /// region per execution (1 = point-to-point).
    pub max_fanout: u64,
}

impl StepMeta {
    /// Placeholder for steps that never charge cycles (Seq/Nop/...).
    pub fn control(id: usize) -> StepMeta {
        StepMeta {
            id,
            kind: StepKind::Control,
            name: String::new(),
            label: crate::UNLABELLED.to_string(),
            regions: 0,
            max_fanout: 0,
        }
    }
}

/// Dynamic per-step accumulators.
#[derive(Clone, Debug, Default)]
struct StepDyn {
    compute_runs: u64,
    exchange_runs: u64,
    syncs: u64,
    compute_cycles: u64,
    exchange_cycles: u64,
    sync_cycles: u64,
    /// Σ over runs of Σ per-tile busy cycles (for mean-vs-makespan).
    sum_busy: u64,
    /// Max tiles that participated in any one run.
    participants: u64,
    on_chip_bytes: u64,
    link_bytes: u64,
    flops: u64,
    mem_bytes: u64,
    /// Per-tile busy cycles across all runs; empty until first compute.
    tile_busy: Vec<u64>,
}

/// The raw per-step recorder the engine drives during plan replay.
///
/// All methods are O(participating tiles) or O(1); nothing here reads the
/// clock, so attaching a recorder cannot perturb device cycle totals.
#[derive(Clone, Debug)]
pub struct PerfRecorder {
    steps: Vec<StepDyn>,
    num_tiles: usize,
}

impl PerfRecorder {
    pub fn new(num_steps: usize, num_tiles: usize) -> PerfRecorder {
        PerfRecorder { steps: vec![StepDyn::default(); num_steps], num_tiles }
    }

    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// One compute superstep of `step`: per-tile busy cycles, in any
    /// order (aggregation is order-independent).
    pub fn record_compute(&mut self, step: usize, per_tile: &[(usize, u64)]) {
        let d = &mut self.steps[step];
        if d.tile_busy.is_empty() {
            d.tile_busy = vec![0; self.num_tiles];
        }
        let mut max = 0u64;
        let mut sum = 0u64;
        for &(tile, cycles) in per_tile {
            d.tile_busy[tile] += cycles;
            sum += cycles;
            max = max.max(cycles);
        }
        d.compute_cycles += max;
        d.sum_busy += sum;
        d.participants = d.participants.max(per_tile.len() as u64);
        d.compute_runs += 1;
    }

    /// One exchange phase of `step`, with its bytes split by link class.
    pub fn record_exchange(&mut self, step: usize, cycles: u64, on_chip: u64, link: u64) {
        let d = &mut self.steps[step];
        d.exchange_cycles += cycles;
        d.on_chip_bytes += on_chip;
        d.link_bytes += link;
        d.exchange_runs += 1;
    }

    /// One BSP sync charged by `step`.
    pub fn record_sync(&mut self, step: usize, cycles: u64) {
        let d = &mut self.steps[step];
        d.sync_cycles += cycles;
        d.syncs += 1;
    }

    /// Work counters for one compute superstep of `step` (flops and SRAM
    /// bytes summed over participating tiles).
    pub fn record_flops(&mut self, step: usize, flops: u64, mem_bytes: u64) {
        let d = &mut self.steps[step];
        d.flops += flops;
        d.mem_bytes += mem_bytes;
    }

    /// Σ over steps of (compute + exchange + sync) cycles — equals the
    /// engine's `device_cycles` when every charge site passes a step id.
    pub fn total_cycles(&self) -> u64 {
        self.steps.iter().map(|d| d.compute_cycles + d.exchange_cycles + d.sync_cycles).sum()
    }
}

/// One step's row in the report.
#[derive(Clone, Debug, PartialEq)]
pub struct StepReport {
    pub id: usize,
    pub kind: String,
    pub name: String,
    pub label: String,
    /// Times the step executed (max over its charge kinds).
    pub runs: u64,
    pub compute_cycles: u64,
    pub exchange_cycles: u64,
    pub sync_cycles: u64,
    pub total_cycles: u64,
    pub syncs: u64,
    pub on_chip_bytes: u64,
    pub link_bytes: u64,
    /// Distinct exchange regions per execution (static).
    pub regions: u64,
    /// Max destination copies sharing one source region (static).
    pub max_fanout: u64,
    /// Tiles participating in one compute superstep.
    pub participants: u64,
    /// Σ per-tile busy cycles across all runs.
    pub sum_busy: u64,
    /// `100·(1 − mean/makespan)` over participating tiles; 0 = perfect.
    pub imbalance_pct: f64,
    /// Top-k busiest `(tile, busy_cycles)` for this step.
    pub hot_tiles: Vec<(u64, u64)>,
    pub flops: u64,
    pub mem_bytes: u64,
    /// flops / SRAM bytes — the roofline x-axis.
    pub arithmetic_intensity: f64,
    /// Achieved per-tile throughput as % of the cost model's f32 FMA peak.
    pub peak_pct: f64,
}

impl StepReport {
    pub fn exchange_bytes(&self) -> u64 {
        self.on_chip_bytes + self.link_bytes
    }
}

/// Whole-run totals and the speed-of-light "what-if" estimates.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpeedOfLight {
    /// Σ per-step cycles == device cycles.
    pub device_cycles: u64,
    pub compute_cycles: u64,
    pub exchange_cycles: u64,
    pub sync_cycles: u64,
    /// Compute replaced by `ceil(Σ busy / participants)` per step —
    /// device cycles if every compute set were perfectly balanced.
    pub perfect_balance_cycles: u64,
    /// Device cycles with all exchange removed (syncs kept).
    pub zero_exchange_cycles: u64,
    /// Perfect balance *and* zero exchange: balanced compute + syncs —
    /// the BSP lower bound this plan could approach.
    pub ideal_cycles: u64,
}

/// The assembled perf section: per-step attribution, imbalance,
/// congestion, roofline, speed-of-light, and host-side [`Metrics`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PerfReport {
    /// Steps that charged any cycles, sorted by total cycles descending
    /// (ties by id ascending).
    pub steps: Vec<StepReport>,
    /// Plan size (including steps that never charged cycles).
    pub plan_steps: usize,
    pub num_tiles: usize,
    /// The cost model's per-tile f32 FMA peak, flops/cycle.
    pub peak_flops_per_cycle: f64,
    pub totals: SpeedOfLight,
    /// Host-side metrics (attempt latency, retries, checkpoints...);
    /// empty at engine level, filled in by `runner::solve`. Excluded from
    /// [`PerfReport::attribution_json`] because host wall-clock is not
    /// deterministic.
    pub metrics: Metrics,
}

impl PerfReport {
    /// Assemble a report from static metadata plus the recorder.
    /// `metas.len()` must equal the recorder's step count.
    pub fn build(
        metas: &[StepMeta],
        rec: &PerfRecorder,
        peak_flops_per_cycle: f64,
        top_k: usize,
    ) -> PerfReport {
        assert_eq!(metas.len(), rec.steps.len(), "meta/recorder step count mismatch");
        let mut steps = Vec::new();
        let mut totals = SpeedOfLight::default();
        for (meta, d) in metas.iter().zip(&rec.steps) {
            let total = d.compute_cycles + d.exchange_cycles + d.sync_cycles;
            totals.device_cycles += total;
            totals.compute_cycles += d.compute_cycles;
            totals.exchange_cycles += d.exchange_cycles;
            totals.sync_cycles += d.sync_cycles;
            let balanced = if d.participants > 0 {
                d.sum_busy.div_ceil(d.participants)
            } else {
                d.compute_cycles
            };
            totals.perfect_balance_cycles += balanced + d.exchange_cycles + d.sync_cycles;
            totals.zero_exchange_cycles += d.compute_cycles + d.sync_cycles;
            totals.ideal_cycles += balanced + d.sync_cycles;
            if total == 0 && d.flops == 0 && d.on_chip_bytes + d.link_bytes == 0 {
                continue;
            }
            let mean =
                if d.participants > 0 { d.sum_busy as f64 / d.participants as f64 } else { 0.0 };
            let imbalance_pct = if d.compute_cycles > 0 && d.participants > 0 {
                100.0 * (1.0 - mean / d.compute_cycles as f64)
            } else {
                0.0
            };
            let mut hot: Vec<(u64, u64)> = d
                .tile_busy
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(t, &c)| (t as u64, c))
                .collect();
            hot.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            hot.truncate(top_k);
            let arithmetic_intensity =
                if d.mem_bytes > 0 { d.flops as f64 / d.mem_bytes as f64 } else { 0.0 };
            let denom = d.compute_cycles as f64 * d.participants as f64 * peak_flops_per_cycle;
            let peak_pct = if denom > 0.0 { 100.0 * d.flops as f64 / denom } else { 0.0 };
            steps.push(StepReport {
                id: meta.id,
                kind: meta.kind.as_str().to_string(),
                name: meta.name.clone(),
                label: meta.label.clone(),
                runs: d.compute_runs.max(d.exchange_runs).max(d.syncs),
                compute_cycles: d.compute_cycles,
                exchange_cycles: d.exchange_cycles,
                sync_cycles: d.sync_cycles,
                total_cycles: total,
                syncs: d.syncs,
                on_chip_bytes: d.on_chip_bytes,
                link_bytes: d.link_bytes,
                regions: meta.regions,
                max_fanout: meta.max_fanout,
                participants: d.participants,
                sum_busy: d.sum_busy,
                imbalance_pct,
                hot_tiles: hot,
                flops: d.flops,
                mem_bytes: d.mem_bytes,
                arithmetic_intensity,
                peak_pct,
            });
        }
        steps.sort_by(|a, b| b.total_cycles.cmp(&a.total_cycles).then(a.id.cmp(&b.id)));
        PerfReport {
            steps,
            plan_steps: metas.len(),
            num_tiles: rec.num_tiles,
            peak_flops_per_cycle,
            totals,
            metrics: Metrics::new(),
        }
    }

    /// Σ per-step total cycles — the partition invariant's left-hand side.
    pub fn steps_total(&self) -> u64 {
        self.steps.iter().map(|s| s.total_cycles).sum()
    }

    // ------------------------------------------------------------------
    // JSON
    // ------------------------------------------------------------------

    fn value_impl(&self, with_metrics: bool) -> Json {
        let t = &self.totals;
        let mut pairs = vec![
            ("plan_steps".to_string(), Json::from(self.plan_steps)),
            ("num_tiles".to_string(), Json::from(self.num_tiles)),
            ("peak_flops_per_cycle".to_string(), Json::from(self.peak_flops_per_cycle)),
            (
                "totals".to_string(),
                Json::obj([
                    ("device_cycles", Json::from(t.device_cycles)),
                    ("compute_cycles", Json::from(t.compute_cycles)),
                    ("exchange_cycles", Json::from(t.exchange_cycles)),
                    ("sync_cycles", Json::from(t.sync_cycles)),
                    ("perfect_balance_cycles", Json::from(t.perfect_balance_cycles)),
                    ("zero_exchange_cycles", Json::from(t.zero_exchange_cycles)),
                    ("ideal_cycles", Json::from(t.ideal_cycles)),
                ]),
            ),
            (
                "steps".to_string(),
                Json::arr(self.steps.iter().map(|s| {
                    Json::obj([
                        ("id", Json::from(s.id)),
                        ("kind", Json::from(s.kind.as_str())),
                        ("name", Json::from(s.name.as_str())),
                        ("label", Json::from(s.label.as_str())),
                        ("runs", Json::from(s.runs)),
                        ("compute_cycles", Json::from(s.compute_cycles)),
                        ("exchange_cycles", Json::from(s.exchange_cycles)),
                        ("sync_cycles", Json::from(s.sync_cycles)),
                        ("total_cycles", Json::from(s.total_cycles)),
                        ("syncs", Json::from(s.syncs)),
                        ("on_chip_bytes", Json::from(s.on_chip_bytes)),
                        ("link_bytes", Json::from(s.link_bytes)),
                        ("regions", Json::from(s.regions)),
                        ("max_fanout", Json::from(s.max_fanout)),
                        ("participants", Json::from(s.participants)),
                        ("sum_busy", Json::from(s.sum_busy)),
                        ("imbalance_pct", Json::from(s.imbalance_pct)),
                        (
                            "hot_tiles",
                            Json::arr(
                                s.hot_tiles
                                    .iter()
                                    .map(|&(t, c)| Json::arr([Json::from(t), Json::from(c)])),
                            ),
                        ),
                        ("flops", Json::from(s.flops)),
                        ("mem_bytes", Json::from(s.mem_bytes)),
                        ("arithmetic_intensity", Json::from(s.arithmetic_intensity)),
                        ("peak_pct", Json::from(s.peak_pct)),
                    ])
                })),
            ),
        ];
        if with_metrics && !self.metrics.is_empty() {
            pairs.push(("metrics".to_string(), self.metrics.to_value()));
        }
        Json::Obj(pairs)
    }

    pub fn to_value(&self) -> Json {
        self.value_impl(true)
    }

    /// The deterministic attribution subset (no host-side metrics),
    /// serialised compactly — what the executor bit-identity tests and
    /// `perf_attrib` compare.
    pub fn attribution_json(&self) -> String {
        self.value_impl(false).to_string()
    }

    pub fn from_value(v: &Json) -> Result<PerfReport, String> {
        let u = |v: &Json, k: &str| -> Result<u64, String> {
            v.get(k).and_then(Json::as_u64).ok_or_else(|| format!("perf: missing '{k}'"))
        };
        let f = |v: &Json, k: &str| -> Result<f64, String> {
            v.get(k).and_then(Json::as_f64).ok_or_else(|| format!("perf: missing '{k}'"))
        };
        let s = |v: &Json, k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("perf: missing '{k}'"))
        };
        let t = v.get("totals").ok_or("perf: missing 'totals'")?;
        let steps = v
            .get("steps")
            .and_then(Json::as_arr)
            .ok_or("perf: missing 'steps'")?
            .iter()
            .map(|sv| {
                let hot_tiles = sv
                    .get("hot_tiles")
                    .and_then(Json::as_arr)
                    .map(|a| {
                        a.iter()
                            .filter_map(|p| {
                                let p = p.as_arr()?;
                                Some((p.first()?.as_u64()?, p.get(1)?.as_u64()?))
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                Ok(StepReport {
                    id: u(sv, "id")? as usize,
                    kind: s(sv, "kind")?,
                    name: s(sv, "name")?,
                    label: s(sv, "label")?,
                    runs: u(sv, "runs")?,
                    compute_cycles: u(sv, "compute_cycles")?,
                    exchange_cycles: u(sv, "exchange_cycles")?,
                    sync_cycles: u(sv, "sync_cycles")?,
                    total_cycles: u(sv, "total_cycles")?,
                    syncs: u(sv, "syncs")?,
                    on_chip_bytes: u(sv, "on_chip_bytes")?,
                    link_bytes: u(sv, "link_bytes")?,
                    regions: u(sv, "regions")?,
                    max_fanout: u(sv, "max_fanout")?,
                    participants: u(sv, "participants")?,
                    sum_busy: u(sv, "sum_busy")?,
                    imbalance_pct: f(sv, "imbalance_pct")?,
                    hot_tiles,
                    flops: u(sv, "flops")?,
                    mem_bytes: u(sv, "mem_bytes")?,
                    arithmetic_intensity: f(sv, "arithmetic_intensity")?,
                    peak_pct: f(sv, "peak_pct")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(PerfReport {
            steps,
            plan_steps: u(v, "plan_steps")? as usize,
            num_tiles: u(v, "num_tiles")? as usize,
            peak_flops_per_cycle: f(v, "peak_flops_per_cycle")?,
            totals: SpeedOfLight {
                device_cycles: u(t, "device_cycles")?,
                compute_cycles: u(t, "compute_cycles")?,
                exchange_cycles: u(t, "exchange_cycles")?,
                sync_cycles: u(t, "sync_cycles")?,
                perfect_balance_cycles: u(t, "perfect_balance_cycles")?,
                zero_exchange_cycles: u(t, "zero_exchange_cycles")?,
                ideal_cycles: u(t, "ideal_cycles")?,
            },
            metrics: v.get("metrics").map(Metrics::from_value).transpose()?.unwrap_or_default(),
        })
    }

    // ------------------------------------------------------------------
    // Text rendering
    // ------------------------------------------------------------------

    /// PopVision-style text sections: top-k attribution table, imbalance
    /// per compute set, exchange congestion, roofline, speed-of-light,
    /// metrics. Appended to the `*.report.txt` profiling artifact.
    pub fn render(&self, top_k: usize) -> String {
        let mut out = String::new();
        let dev = self.totals.device_cycles;
        out.push_str(&format!(
            "== per-step attribution (top {} of {} active / {} plan steps) ==\n",
            top_k.min(self.steps.len()),
            self.steps.len(),
            self.plan_steps
        ));
        out.push_str(
            "  id kind      label            name                       runs      total  share\n",
        );
        for s in self.steps.iter().take(top_k) {
            out.push_str(&format!(
                "{:>4} {:<9} {:<16} {:<26} {:>5} {:>10} {:>5.1}%\n",
                s.id,
                s.kind,
                clip(&s.label, 16),
                clip(&s.name, 26),
                s.runs,
                group(s.total_cycles),
                pct(s.total_cycles, dev),
            ));
        }

        let computes: Vec<&StepReport> =
            self.steps.iter().filter(|s| s.kind == "execute" && s.compute_cycles > 0).collect();
        if !computes.is_empty() {
            out.push_str("\n== load imbalance per compute set ==\n");
            out.push_str(
                "  id name                       tiles   makespan       mean  imbal  hottest tiles\n",
            );
            for s in computes.iter().take(top_k) {
                let mean = if s.participants > 0 {
                    s.sum_busy as f64 / s.participants as f64
                } else {
                    0.0
                };
                let hot = s
                    .hot_tiles
                    .iter()
                    .take(4)
                    .map(|&(t, c)| format!("{t}:{}", group(c)))
                    .collect::<Vec<_>>()
                    .join(" ");
                out.push_str(&format!(
                    "{:>4} {:<26} {:>5} {:>10} {:>10} {:>5.1}%  {}\n",
                    s.id,
                    clip(&s.name, 26),
                    s.participants,
                    group(s.compute_cycles),
                    group(mean.round() as u64),
                    s.imbalance_pct,
                    hot,
                ));
            }
        }

        let exchanges: Vec<&StepReport> =
            self.steps.iter().filter(|s| s.exchange_bytes() > 0).collect();
        if !exchanges.is_empty() {
            out.push_str("\n== exchange congestion ==\n");
            out.push_str(
                "  id name                        on-chip B     link B  regions  fanout     cycles\n",
            );
            for s in exchanges.iter().take(top_k) {
                out.push_str(&format!(
                    "{:>4} {:<26} {:>11} {:>10} {:>8} {:>7} {:>10}\n",
                    s.id,
                    clip(&s.name, 26),
                    group(s.on_chip_bytes),
                    group(s.link_bytes),
                    s.regions,
                    s.max_fanout,
                    group(s.exchange_cycles),
                ));
            }
        }

        let hot_flops: Vec<&StepReport> = self.steps.iter().filter(|s| s.flops > 0).collect();
        if !hot_flops.is_empty() {
            out.push_str(&format!(
                "\n== roofline (per-tile f32 peak {:.2} flops/cycle) ==\n",
                self.peak_flops_per_cycle
            ));
            out.push_str(
                "  id name                            flops     SRAM B  flops/B  % peak\n",
            );
            for s in hot_flops.iter().take(top_k) {
                out.push_str(&format!(
                    "{:>4} {:<26} {:>11} {:>10} {:>8.3} {:>6.2}%\n",
                    s.id,
                    clip(&s.name, 26),
                    group(s.flops),
                    group(s.mem_bytes),
                    s.arithmetic_intensity,
                    s.peak_pct,
                ));
            }
        }

        let t = &self.totals;
        out.push_str("\n== speed of light ==\n");
        out.push_str(&format!(
            "device cycles          {:>14}  (compute {} / exchange {} / sync {})\n",
            group(t.device_cycles),
            group(t.compute_cycles),
            group(t.exchange_cycles),
            group(t.sync_cycles),
        ));
        out.push_str(&format!(
            "perfect balance        {:>14}  ({:.1}% of device)\n",
            group(t.perfect_balance_cycles),
            pct(t.perfect_balance_cycles, t.device_cycles),
        ));
        out.push_str(&format!(
            "zero exchange          {:>14}  ({:.1}% of device)\n",
            group(t.zero_exchange_cycles),
            pct(t.zero_exchange_cycles, t.device_cycles),
        ));
        out.push_str(&format!(
            "ideal (both)           {:>14}  ({:.1}% of device)\n",
            group(t.ideal_cycles),
            pct(t.ideal_cycles, t.device_cycles),
        ));

        if !self.metrics.is_empty() {
            out.push_str("\n== host metrics ==\n");
            out.push_str(&self.metrics.to_value().to_pretty());
            out.push('\n');
        }
        out
    }
}

fn group(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push('_');
        }
        out.push(c);
    }
    out
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

fn clip(s: &str, w: usize) -> String {
    if s.len() <= w {
        s.to_string()
    } else {
        format!(
            "{}…",
            &s[..s.char_indices().take(w - 1).last().map_or(0, |(i, c)| i + c.len_utf8())]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Vec<StepMeta>, PerfRecorder) {
        let mut metas: Vec<StepMeta> = (0..4).map(StepMeta::control).collect();
        metas[1] = StepMeta {
            id: 1,
            kind: StepKind::Execute,
            name: "spmv".into(),
            label: "cg".into(),
            regions: 0,
            max_fanout: 0,
        };
        metas[2] = StepMeta {
            id: 2,
            kind: StepKind::Exchange,
            name: "halo".into(),
            label: "cg".into(),
            regions: 3,
            max_fanout: 2,
        };
        let mut rec = PerfRecorder::new(4, 4);
        rec.record_sync(1, 150);
        rec.record_compute(1, &[(0, 10), (1, 30), (2, 20)]);
        rec.record_flops(1, 12, 96);
        rec.record_sync(1, 150);
        rec.record_compute(1, &[(0, 10), (1, 30), (2, 20)]);
        rec.record_flops(1, 12, 96);
        rec.record_sync(2, 150);
        rec.record_exchange(2, 40, 512, 128);
        (metas, rec)
    }

    #[test]
    fn per_step_totals_partition_recorder_total() {
        let (metas, rec) = sample();
        let r = PerfReport::build(&metas, &rec, 2.0, 8);
        assert_eq!(r.steps_total(), rec.total_cycles());
        assert_eq!(r.totals.device_cycles, rec.total_cycles());
        // 2 runs of max-30 compute + 2×150 sync.
        let spmv = r.steps.iter().find(|s| s.name == "spmv").unwrap();
        assert_eq!(spmv.compute_cycles, 60);
        assert_eq!(spmv.sync_cycles, 300);
        assert_eq!(spmv.runs, 2);
        assert_eq!(spmv.participants, 3);
        assert_eq!(spmv.sum_busy, 120);
        assert_eq!(spmv.flops, 24);
        assert_eq!(spmv.mem_bytes, 192);
        // mean 40 vs makespan 60 → 33.3% imbalance.
        assert!((spmv.imbalance_pct - 100.0 * (1.0 - 40.0 / 60.0)).abs() < 1e-12);
        assert_eq!(spmv.hot_tiles[0], (1, 60));
        let halo = r.steps.iter().find(|s| s.name == "halo").unwrap();
        assert_eq!(halo.on_chip_bytes, 512);
        assert_eq!(halo.link_bytes, 128);
        assert_eq!(halo.regions, 3);
        assert_eq!(halo.max_fanout, 2);
    }

    #[test]
    fn speed_of_light_bounds() {
        let (metas, rec) = sample();
        let r = PerfReport::build(&metas, &rec, 2.0, 8);
        let t = &r.totals;
        // Balanced spmv: ceil(120/3)=40 per... summed per step: 2-run sum
        // collapses to ceil(sum_busy/participants)=40 total.
        assert_eq!(t.perfect_balance_cycles, 40 + t.exchange_cycles + t.sync_cycles);
        assert_eq!(t.zero_exchange_cycles, t.device_cycles - t.exchange_cycles);
        assert_eq!(t.ideal_cycles, 40 + t.sync_cycles);
        assert!(t.ideal_cycles <= t.perfect_balance_cycles);
        assert!(t.perfect_balance_cycles <= t.device_cycles);
    }

    #[test]
    fn json_round_trip_and_attribution_subset() {
        let (metas, rec) = sample();
        let mut r = PerfReport::build(&metas, &rec, 2.0, 8);
        r.metrics.counter_add("solve.attempts", 1);
        let back = PerfReport::from_value(&r.to_value()).unwrap();
        assert_eq!(back, r);
        // attribution_json excludes the (non-deterministic) metrics.
        assert!(!r.attribution_json().contains("metrics"));
        assert!(r.to_value().to_pretty().contains("metrics"));
    }

    #[test]
    fn render_has_all_sections() {
        let (metas, rec) = sample();
        let r = PerfReport::build(&metas, &rec, 2.0, 8);
        let text = r.render(10);
        for needle in [
            "per-step attribution",
            "load imbalance",
            "exchange congestion",
            "roofline",
            "speed of light",
        ] {
            assert!(text.contains(needle), "missing section {needle}:\n{text}");
        }
    }
}
