//! The PopVision-style text report.
//!
//! Renders a cycle profile (and, when available, the richer per-step data
//! of a [`TraceRecorder`]) as aligned text tables: phase breakdown,
//! hottest labels and compute sets, a tile-utilisation histogram, and
//! exchange volumes per step.

use ipu_sim::clock::{CycleStats, Phase};

use crate::solve_report::{tile_util, UNLABELLED};
use crate::trace::TraceRecorder;

/// Format an integer with `_` thousands separators (`1_234_567`).
fn group(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push('_');
        }
        out.push(c);
    }
    out
}

fn pct(part: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * part as f64 / total as f64
    }
}

fn bar(value: f64, max: f64, width: usize) -> String {
    let n = if max > 0.0 { ((value / max) * width as f64).round() as usize } else { 0 };
    "#".repeat(n.min(width))
}

/// Render the profile report. `top_k` bounds the label / compute-set /
/// exchange tables; pass the engine's recorder for the per-step sections.
pub fn text_report(stats: &CycleStats, trace: Option<&TraceRecorder>, top_k: usize) -> String {
    let mut out = String::new();
    let dev = stats.device_cycles();
    let push = |out: &mut String, line: String| {
        out.push_str(&line);
        out.push('\n');
    };

    push(&mut out, "== graphene profile ==".to_string());
    push(&mut out, format!("device cycles   : {}", group(dev)));
    push(&mut out, format!("supersteps      : {}", group(stats.supersteps())));
    push(&mut out, format!("sync barriers   : {}", group(stats.sync_count())));
    push(&mut out, format!("exchange bytes  : {}", group(stats.exchange_bytes())));
    if stats.label_underflows() > 0 {
        push(
            &mut out,
            format!(
                "label underflows: {}  (WARNING: unbalanced pop_label — attribution unreliable)",
                group(stats.label_underflows())
            ),
        );
    }
    out.push('\n');

    // ------------------------------------------------------------------
    // Phase breakdown
    // ------------------------------------------------------------------
    push(&mut out, "-- phase breakdown --".to_string());
    push(&mut out, format!("{:<10} {:>16} {:>7}", "phase", "cycles", "%"));
    for phase in Phase::ALL {
        let c = stats.phase_cycles(phase);
        push(&mut out, format!("{:<10} {:>16} {:>6.1}%", phase.name(), group(c), pct(c, dev)));
    }
    out.push('\n');

    // ------------------------------------------------------------------
    // Hottest labels
    // ------------------------------------------------------------------
    let mut labels = stats.labels_by_phase_sorted();
    if stats.unlabelled_cycles() > 0 {
        labels.push((
            UNLABELLED.to_string(),
            [
                stats.unlabelled_phase_cycles(Phase::Compute),
                stats.unlabelled_phase_cycles(Phase::Exchange),
                stats.unlabelled_phase_cycles(Phase::Sync),
            ],
        ));
    }
    if !labels.is_empty() {
        push(&mut out, format!("-- hottest labels (top {top_k}) --"));
        push(
            &mut out,
            format!(
                "{:<20} {:>16} {:>7} {:>14} {:>14} {:>12}",
                "label", "cycles", "%", "compute", "exchange", "sync"
            ),
        );
        for (name, p) in labels.iter().take(top_k) {
            let total: u64 = p.iter().sum();
            push(
                &mut out,
                format!(
                    "{:<20} {:>16} {:>6.1}% {:>14} {:>14} {:>12}",
                    name,
                    group(total),
                    pct(total, dev),
                    group(p[0]),
                    group(p[1]),
                    group(p[2])
                ),
            );
        }
        out.push('\n');
    }

    // ------------------------------------------------------------------
    // Tile utilisation
    // ------------------------------------------------------------------
    let util = tile_util(stats);
    push(&mut out, "-- tile utilisation --".to_string());
    if util.used == 0 {
        push(&mut out, "(no tile did compute work)".to_string());
    } else {
        push(
            &mut out,
            format!(
                "tiles used {}   min {}   median {}   max {}   mean {:.1}   balance {:.3}",
                util.used,
                group(util.min),
                group(util.median),
                group(util.max),
                util.mean,
                util.balance
            ),
        );
        // Histogram of busy cycles over used tiles, 10 equal-width bins.
        let busy: Vec<u64> = stats.tile_busy_all().iter().copied().filter(|&c| c > 0).collect();
        let (lo, hi) = (util.min, util.max);
        let bins = 10usize;
        let width = ((hi - lo) / bins as u64).max(1);
        let mut counts = vec![0usize; bins];
        for &b in &busy {
            let i = (((b - lo) / width) as usize).min(bins - 1);
            counts[i] += 1;
        }
        let peak = counts.iter().copied().max().unwrap_or(1) as f64;
        for (i, &c) in counts.iter().enumerate() {
            let from = lo + i as u64 * width;
            let to = if i == bins - 1 { hi } else { lo + (i as u64 + 1) * width - 1 };
            push(
                &mut out,
                format!(
                    "[{:>12} .. {:>12}] {:>5}  {}",
                    group(from),
                    group(to),
                    c,
                    bar(c as f64, peak, 40)
                ),
            );
        }
    }
    out.push('\n');

    // ------------------------------------------------------------------
    // Trace-backed sections
    // ------------------------------------------------------------------
    if let Some(t) = trace {
        let cs = t.compute_sets_sorted();
        if !cs.is_empty() {
            push(&mut out, format!("-- hottest compute sets (top {top_k}) --"));
            push(
                &mut out,
                format!("{:<24} {:>16} {:>7} {:>10}", "compute set", "cycles", "%", "runs"),
            );
            for (name, cycles, runs) in cs.iter().take(top_k) {
                push(
                    &mut out,
                    format!(
                        "{:<24} {:>16} {:>6.1}% {:>10}",
                        name,
                        group(*cycles),
                        pct(*cycles, dev),
                        group(*runs)
                    ),
                );
            }
            out.push('\n');
        }
        let ex = t.exchanges_by_name();
        if !ex.is_empty() {
            push(&mut out, format!("-- exchange volume per step (top {top_k}) --"));
            push(
                &mut out,
                format!("{:<24} {:>10} {:>16} {:>16}", "exchange", "runs", "cycles", "bytes"),
            );
            for (name, runs, cycles, bytes) in ex.iter().take(top_k) {
                push(
                    &mut out,
                    format!(
                        "{:<24} {:>10} {:>16} {:>16}",
                        name,
                        group(*runs),
                        group(*cycles),
                        group(*bytes)
                    ),
                );
            }
            out.push('\n');
        }
        if t.dropped() > 0 {
            push(
                &mut out,
                format!("(note: {} trace events dropped past the memory cap)", t.dropped()),
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_mentions_all_sections() {
        let mut s = CycleStats::new(4);
        s.push_label("spmv");
        s.record_compute([(0, 100), (1, 90), (2, 110), (3, 95)]);
        s.record_exchange(30);
        s.record_exchange_bytes(512);
        s.pop_label();
        s.record_sync(5);

        let mut t = TraceRecorder::new().with_tile_lanes(4);
        t.begin_label("spmv");
        t.compute("spmv_cs", &[(0, 100), (1, 90), (2, 110), (3, 95)]);
        t.exchange("halo", 30, 512, 2);
        t.end_label();
        t.sync(5);

        let r = text_report(&s, Some(&t), 10);
        for needle in [
            "phase breakdown",
            "hottest labels",
            "tile utilisation",
            "hottest compute sets",
            "exchange volume",
            "spmv",
            "halo",
            "compute",
            "balance",
        ] {
            assert!(r.contains(needle), "missing '{needle}' in:\n{r}");
        }
        // The unlabelled sync shows up.
        assert!(r.contains(UNLABELLED));
    }

    #[test]
    fn report_handles_empty_stats() {
        let s = CycleStats::new(2);
        let r = text_report(&s, None, 5);
        assert!(r.contains("no tile did compute work"));
    }

    #[test]
    fn grouping_separates_thousands() {
        assert_eq!(group(0), "0");
        assert_eq!(group(999), "999");
        assert_eq!(group(1000), "1_000");
        assert_eq!(group(1234567), "1_234_567");
    }
}
