//! The `resilience` section of a [`crate::SolveReport`].
//!
//! When fault injection and/or the recovery layer are active, the runner
//! stamps everything that happened — injected faults, detections,
//! rollbacks, degradations, checkpoint overhead — into this additive
//! section. Reports written before it existed (PR 1–4) parse unchanged
//! with `resilience: None`.

use ipu_sim::fault::FaultEvent;
use json::Json;

/// One detection the recovery layer acted on.
#[derive(Clone, Debug, PartialEq)]
pub struct DetectionRecord {
    /// 1-based attempt in which the detection fired.
    pub attempt: u32,
    /// Detector class: `non_finite` / `divergence` / `stagnation` /
    /// `tolerance_miss`.
    pub kind: String,
    /// Monitored iteration at detection time (0: post-run check).
    pub iteration: usize,
    /// Relative residual observed (NaN serialises as `null`).
    pub residual: f64,
    pub detail: String,
}

/// The `resilience` section: what faults were injected and what the
/// detect/recover/degrade layer did about them.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Resilience {
    /// Terminal status: `converged` / `max_iters` / `recovered` (the
    /// matching `SolveError` name for failed solves is reported by the
    /// caller, not here — a failed solve returns `Err`, not a report).
    pub status: String,
    /// Total attempts executed (1 = no recovery needed).
    pub attempts: u32,
    /// Rollback-and-restart recoveries across all configuration rungs.
    pub restarts: u32,
    /// Human-readable degradation steps, in order.
    pub degradations: Vec<String>,
    /// Every injected fault that fired, across all attempts.
    pub faults_injected: Vec<FaultEvent>,
    pub detections: Vec<DetectionRecord>,
    /// Checkpoint snapshots taken across all attempts.
    pub checkpoints: u64,
    /// Device cycles spent under the `checkpoint` label (final attempt).
    pub checkpoint_cycles: u64,
    /// Device cycles summed over *all* attempts (the per-attempt stats in
    /// the report body cover only the final one).
    pub total_device_cycles: u64,
}

impl Resilience {
    pub fn to_value(&self) -> Json {
        Json::obj([
            ("status", Json::from(self.status.as_str())),
            ("attempts", Json::from(self.attempts as u64)),
            ("restarts", Json::from(self.restarts as u64)),
            ("degradations", Json::arr(self.degradations.iter().map(|d| Json::from(d.as_str())))),
            (
                "faults_injected",
                Json::arr(self.faults_injected.iter().map(|f| {
                    Json::obj([
                        ("superstep", Json::from(f.superstep)),
                        ("tile", Json::from(f.tile)),
                        ("class", Json::from(f.class.as_str())),
                        ("detail", Json::from(f.detail.as_str())),
                    ])
                })),
            ),
            (
                "detections",
                Json::arr(self.detections.iter().map(|d| {
                    Json::obj([
                        ("attempt", Json::from(d.attempt as u64)),
                        ("kind", Json::from(d.kind.as_str())),
                        ("iteration", Json::from(d.iteration)),
                        (
                            "residual",
                            if d.residual.is_finite() {
                                Json::from(d.residual)
                            } else {
                                Json::Null
                            },
                        ),
                        ("detail", Json::from(d.detail.as_str())),
                    ])
                })),
            ),
            ("checkpoints", Json::from(self.checkpoints)),
            ("checkpoint_cycles", Json::from(self.checkpoint_cycles)),
            ("total_device_cycles", Json::from(self.total_device_cycles)),
        ])
    }

    pub fn from_value(v: &Json) -> Result<Resilience, String> {
        let str_of = |v: &Json, k: &str| -> String {
            v.get(k).and_then(Json::as_str).unwrap_or_default().to_string()
        };
        let u64_of = |v: &Json, k: &str| -> u64 { v.get(k).and_then(Json::as_u64).unwrap_or(0) };
        let faults_injected = v
            .get("faults_injected")
            .and_then(Json::as_arr)
            .map(|arr| {
                arr.iter()
                    .map(|f| FaultEvent {
                        superstep: u64_of(f, "superstep"),
                        tile: u64_of(f, "tile") as usize,
                        class: str_of(f, "class"),
                        detail: str_of(f, "detail"),
                    })
                    .collect()
            })
            .unwrap_or_default();
        let detections = v
            .get("detections")
            .and_then(Json::as_arr)
            .map(|arr| {
                arr.iter()
                    .map(|d| DetectionRecord {
                        attempt: u64_of(d, "attempt") as u32,
                        kind: str_of(d, "kind"),
                        iteration: u64_of(d, "iteration") as usize,
                        residual: d.get("residual").and_then(Json::as_f64).unwrap_or(f64::NAN),
                        detail: str_of(d, "detail"),
                    })
                    .collect()
            })
            .unwrap_or_default();
        Ok(Resilience {
            status: str_of(v, "status"),
            attempts: u64_of(v, "attempts") as u32,
            restarts: u64_of(v, "restarts") as u32,
            degradations: v
                .get("degradations")
                .and_then(Json::as_arr)
                .map(|arr| arr.iter().map(|d| d.as_str().unwrap_or_default().to_string()).collect())
                .unwrap_or_default(),
            faults_injected,
            detections,
            checkpoints: u64_of(v, "checkpoints"),
            checkpoint_cycles: u64_of(v, "checkpoint_cycles"),
            total_device_cycles: u64_of(v, "total_device_cycles"),
        })
    }
}
