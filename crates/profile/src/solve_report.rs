//! Machine-readable solve reports.
//!
//! A [`SolveReport`] merges the engine's cycle profile with solver-level
//! outcomes (convergence history, final residual) into one JSON document,
//! the artifact the bench binaries drop into `results/*.json` so that
//! plots and regression checks never re-parse human-readable tables.
//!
//! Schema (all cycle counts are device cycles):
//!
//! ```json
//! {
//!   "name": "fig5/poisson3d-64",
//!   "solver": { "type": "bi_cg_stab", ... } | null,
//!   "matrix": { "n": 262144, "nnz": 1810432 },
//!   "machine": { "tiles": 5888 },
//!   "solve": {
//!     "iterations": 100,
//!     "final_residual": 1.3e-14,
//!     "seconds": 0.0123,
//!     "history": [[1, 0.5], [2, 0.01], ...]
//!   },
//!   "cycles": {
//!     "device": 123456, "compute": 100000, "exchange": 20000,
//!     "sync": 3456, "exchange_bytes": 789, "sync_count": 42,
//!     "supersteps": 17, "label_underflows": 0
//!   },
//!   "labels": [
//!     { "name": "spmv", "total": 900, "compute": 800, "exchange": 90, "sync": 10 },
//!     { "name": "<unlabelled>", ... }
//!   ],
//!   "tiles": { "used": 4, "min": 10, "median": 12, "max": 20,
//!               "mean": 13.5, "balance": 0.675 },
//!   "backend": { "name": "ipu-sim:seq", "family": "ipu-sim",
//!                "timing": "cycle-model", "seconds": 0.0123 }
//! }
//! ```
//!
//! Invariant (tested): `Σ labels[].total == cycles.device` — the
//! `<unlabelled>` entry absorbs cycles recorded outside any label scope.

use crate::compile_report::CompileReport;
use crate::perf::PerfReport;
use crate::resilience::Resilience;
use ipu_sim::clock::{CycleStats, Phase};
use json::Json;

/// Name of the implicit label bucket for cycles recorded outside any
/// `Prog::Label` scope.
pub const UNLABELLED: &str = "<unlabelled>";

/// Current report schema version, serialised as `"schema"`. Version
/// history: 1 (implicit — reports without the key) covers everything up
/// to the resilience section; 2 adds the key itself and the optional
/// `"perf"` performance-attribution section; 3 adds the optional
/// `"backend"` section naming the backend that executed the solve and
/// the timing domain its seconds live in. All additions are
/// backward-compatible: a v3 parser reads v1/v2 reports (absent sections
/// parse as `None`/defaults).
pub const SCHEMA_VERSION: u32 = 3;

/// Which backend executed a solve and in what timing domain it accounts
/// (schema v3). Reports written by earlier schemas parse with `None`.
#[derive(Clone, Debug, PartialEq)]
pub struct BackendInfo {
    /// Registry name: `"ipu-sim:seq"`, `"cpu:par"`, `"gpu-model"`, ...
    pub name: String,
    /// Backend family: `"ipu-sim"` | `"cpu"` | `"gpu-model"`.
    pub family: String,
    /// Timing domain of `seconds`: `"cycle-model"` (simulated device
    /// cycles at the modelled clock), `"wall-clock"` (measured host
    /// time) or `"roofline-model"` (analytically derived).
    pub timing: String,
    /// Solve time in that domain — the authoritative per-backend number
    /// for cross-backend figures (cycle-model backends also fill the
    /// `cycles` section; wall/modelled backends leave it zeroed).
    pub seconds: f64,
}

impl BackendInfo {
    pub fn to_value(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            ("family", Json::from(self.family.as_str())),
            ("timing", Json::from(self.timing.as_str())),
            ("seconds", Json::from(self.seconds)),
        ])
    }

    pub fn from_value(v: &Json) -> Result<BackendInfo, String> {
        let s = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("backend: missing string '{k}'"))
        };
        Ok(BackendInfo {
            name: s("name")?,
            family: s("family")?,
            timing: s("timing")?,
            seconds: v
                .get("seconds")
                .and_then(Json::as_f64)
                .ok_or("backend: missing number 'seconds'")?,
        })
    }
}

/// Totals of the engine's cycle accounting.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CycleBreakdown {
    pub device: u64,
    pub compute: u64,
    pub exchange: u64,
    pub sync: u64,
    pub exchange_bytes: u64,
    pub sync_count: u64,
    pub supersteps: u64,
    /// `pop_label` calls on an empty label stack (label-balance bugs);
    /// 0 in any healthy run.
    pub label_underflows: u64,
}

/// Device cycles attributed to one label (innermost-wins), split by phase.
#[derive(Clone, Debug, PartialEq)]
pub struct LabelEntry {
    pub name: String,
    pub total: u64,
    pub compute: u64,
    pub exchange: u64,
    pub sync: u64,
}

/// Busy-cycle statistics over the tiles that did any compute work.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TileUtil {
    /// Tiles with nonzero busy cycles.
    pub used: usize,
    pub min: u64,
    pub median: u64,
    pub max: u64,
    pub mean: f64,
    /// Mean tile utilisation relative to the compute critical path
    /// (1.0 = perfectly balanced); `CycleStats::compute_balance`.
    pub balance: f64,
}

/// One solve, profiled. See the module docs for the JSON schema.
#[derive(Clone, Debug, PartialEq)]
pub struct SolveReport {
    /// Schema version this report was written with ([`SCHEMA_VERSION`]);
    /// reports without the key parse as 1.
    pub schema: u32,
    pub name: String,
    /// The solver configuration (`SolverConfig::to_value`), or `Null`.
    pub solver: Json,
    pub n: usize,
    pub nnz: usize,
    pub tiles: usize,
    pub iterations: usize,
    pub final_residual: f64,
    pub seconds: f64,
    /// Host wall-clock seconds spent inside `engine.run()` (0.0 when not
    /// measured) — the quantity the parallel host executor improves;
    /// device `seconds` are identical across executors by construction.
    pub host_seconds: f64,
    /// Host executor that ran the solve (`"sequential"`/`"parallel"`;
    /// empty when unrecorded).
    pub executor: String,
    /// (iteration, true relative residual) samples.
    pub history: Vec<(usize, f64)>,
    pub cycles: CycleBreakdown,
    pub labels: Vec<LabelEntry>,
    pub tile_util: TileUtil,
    /// How the executed plan was compiled (pass pipeline statistics);
    /// `None` for reports written before the graph compiler existed or
    /// when the engine did not expose one.
    pub compile: Option<CompileReport>,
    /// Fault-injection and recovery record; `None` for healthy solves run
    /// without fault injection and for reports written before the
    /// resilience layer existed.
    pub resilience: Option<Resilience>,
    /// Plan-aware performance attribution (per-step cycles, imbalance,
    /// congestion, roofline, host metrics); `None` for reports written
    /// before schema v2 and for runs that recorded no attribution (e.g.
    /// the legacy tree-walking interpreter, which has no plan steps).
    pub perf: Option<PerfReport>,
    /// Which backend executed the solve and its timing domain (schema
    /// v3); `None` for reports written before the backend abstraction.
    pub backend: Option<BackendInfo>,
    /// Free-form extra fields, serialised under `"extra"`.
    pub extra: Vec<(String, Json)>,
}

impl SolveReport {
    /// Empty report with only a name.
    pub fn new(name: impl Into<String>) -> SolveReport {
        SolveReport {
            schema: SCHEMA_VERSION,
            name: name.into(),
            solver: Json::Null,
            n: 0,
            nnz: 0,
            tiles: 0,
            iterations: 0,
            final_residual: 0.0,
            seconds: 0.0,
            host_seconds: 0.0,
            executor: String::new(),
            history: Vec::new(),
            cycles: CycleBreakdown::default(),
            labels: Vec::new(),
            tile_util: TileUtil::default(),
            compile: None,
            resilience: None,
            perf: None,
            backend: None,
            extra: Vec::new(),
        }
    }

    /// Fill the cycle/label/tile sections from a cycle profile. The label
    /// list gets an [`UNLABELLED`] entry so totals partition
    /// `device_cycles` exactly.
    pub fn with_stats(mut self, stats: &CycleStats) -> SolveReport {
        self.cycles = CycleBreakdown {
            device: stats.device_cycles(),
            compute: stats.phase_cycles(Phase::Compute),
            exchange: stats.phase_cycles(Phase::Exchange),
            sync: stats.phase_cycles(Phase::Sync),
            exchange_bytes: stats.exchange_bytes(),
            sync_count: stats.sync_count(),
            supersteps: stats.supersteps(),
            label_underflows: stats.label_underflows(),
        };
        self.labels = stats
            .labels_by_phase_sorted()
            .into_iter()
            .map(|(name, p)| LabelEntry {
                name,
                total: p.iter().sum(),
                compute: p[Phase::Compute as usize],
                exchange: p[Phase::Exchange as usize],
                sync: p[Phase::Sync as usize],
            })
            .collect();
        if stats.unlabelled_cycles() > 0 || self.labels.is_empty() {
            self.labels.push(LabelEntry {
                name: UNLABELLED.to_string(),
                total: stats.unlabelled_cycles(),
                compute: stats.unlabelled_phase_cycles(Phase::Compute),
                exchange: stats.unlabelled_phase_cycles(Phase::Exchange),
                sync: stats.unlabelled_phase_cycles(Phase::Sync),
            });
        }
        self.tile_util = tile_util(stats);
        self
    }

    /// Sum of all label totals — equals `cycles.device` by construction.
    pub fn labels_total(&self) -> u64 {
        self.labels.iter().map(|l| l.total).sum()
    }

    // ------------------------------------------------------------------
    // JSON
    // ------------------------------------------------------------------

    pub fn to_value(&self) -> Json {
        let c = &self.cycles;
        let t = &self.tile_util;
        let mut pairs = vec![
            // The version stamps the *writer*: re-serialising a parsed v1
            // report emits the current schema, since the output now has
            // the current document shape.
            ("schema".to_string(), Json::from(SCHEMA_VERSION)),
            ("name".to_string(), Json::from(self.name.as_str())),
            ("solver".to_string(), self.solver.clone()),
            (
                "matrix".to_string(),
                Json::obj([("n", Json::from(self.n)), ("nnz", Json::from(self.nnz))]),
            ),
            ("machine".to_string(), Json::obj([("tiles", Json::from(self.tiles))])),
            (
                "solve".to_string(),
                Json::obj([
                    ("iterations", Json::from(self.iterations)),
                    ("final_residual", Json::from(self.final_residual)),
                    ("seconds", Json::from(self.seconds)),
                    ("host_seconds", Json::from(self.host_seconds)),
                    ("executor", Json::from(self.executor.as_str())),
                    (
                        "history",
                        Json::arr(
                            self.history
                                .iter()
                                .map(|&(i, r)| Json::arr([Json::from(i), Json::from(r)])),
                        ),
                    ),
                ]),
            ),
            (
                "cycles".to_string(),
                Json::obj([
                    ("device", Json::from(c.device)),
                    ("compute", Json::from(c.compute)),
                    ("exchange", Json::from(c.exchange)),
                    ("sync", Json::from(c.sync)),
                    ("exchange_bytes", Json::from(c.exchange_bytes)),
                    ("sync_count", Json::from(c.sync_count)),
                    ("supersteps", Json::from(c.supersteps)),
                    ("label_underflows", Json::from(c.label_underflows)),
                ]),
            ),
            (
                "labels".to_string(),
                Json::arr(self.labels.iter().map(|l| {
                    Json::obj([
                        ("name", Json::from(l.name.as_str())),
                        ("total", Json::from(l.total)),
                        ("compute", Json::from(l.compute)),
                        ("exchange", Json::from(l.exchange)),
                        ("sync", Json::from(l.sync)),
                    ])
                })),
            ),
            (
                "tiles".to_string(),
                Json::obj([
                    ("used", Json::from(t.used)),
                    ("min", Json::from(t.min)),
                    ("median", Json::from(t.median)),
                    ("max", Json::from(t.max)),
                    ("mean", Json::from(t.mean)),
                    ("balance", Json::from(t.balance)),
                ]),
            ),
        ];
        if let Some(compile) = &self.compile {
            pairs.push(("compile".to_string(), compile.to_value()));
        }
        if let Some(resilience) = &self.resilience {
            pairs.push(("resilience".to_string(), resilience.to_value()));
        }
        if let Some(perf) = &self.perf {
            pairs.push(("perf".to_string(), perf.to_value()));
        }
        if let Some(backend) = &self.backend {
            pairs.push(("backend".to_string(), backend.to_value()));
        }
        if !self.extra.is_empty() {
            pairs.push(("extra".to_string(), Json::Obj(self.extra.clone())));
        }
        Json::Obj(pairs)
    }

    pub fn to_json(&self) -> String {
        self.to_value().to_pretty()
    }

    pub fn from_json(text: &str) -> Result<SolveReport, String> {
        SolveReport::from_value(&Json::parse(text).map_err(|e| e.to_string())?)
    }

    pub fn from_value(v: &Json) -> Result<SolveReport, String> {
        let str_of = |v: &Json, k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string '{k}'"))
        };
        let u64_of = |v: &Json, k: &str| -> Result<u64, String> {
            v.get(k).and_then(Json::as_u64).ok_or_else(|| format!("missing integer '{k}'"))
        };
        let f64_of = |v: &Json, k: &str| -> Result<f64, String> {
            v.get(k).and_then(Json::as_f64).ok_or_else(|| format!("missing number '{k}'"))
        };
        let section = |k: &str| -> Result<&Json, String> {
            v.get(k).ok_or_else(|| format!("missing section '{k}'"))
        };

        let matrix = section("matrix")?;
        let machine = section("machine")?;
        let solve = section("solve")?;
        let cycles = section("cycles")?;
        let tiles_s = section("tiles")?;

        let history = solve
            .get("history")
            .and_then(Json::as_arr)
            .map(|arr| {
                arr.iter()
                    .map(|pair| {
                        let p = pair.as_arr().ok_or("history entry not a pair")?;
                        let i = p.first().and_then(Json::as_u64).ok_or("bad history iteration")?;
                        let r = p.get(1).and_then(Json::as_f64).ok_or("bad history residual")?;
                        Ok((i as usize, r))
                    })
                    .collect::<Result<Vec<_>, String>>()
            })
            .transpose()?
            .unwrap_or_default();

        let labels = v
            .get("labels")
            .and_then(Json::as_arr)
            .map(|arr| {
                arr.iter()
                    .map(|l| {
                        Ok(LabelEntry {
                            name: str_of(l, "name")?,
                            total: u64_of(l, "total")?,
                            compute: u64_of(l, "compute")?,
                            exchange: u64_of(l, "exchange")?,
                            sync: u64_of(l, "sync")?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()
            })
            .transpose()?
            .unwrap_or_default();

        Ok(SolveReport {
            // Absent in reports written before the version was recorded.
            schema: v.get("schema").and_then(Json::as_u64).unwrap_or(1) as u32,
            name: str_of(v, "name")?,
            solver: v.get("solver").cloned().unwrap_or(Json::Null),
            n: u64_of(matrix, "n")? as usize,
            nnz: u64_of(matrix, "nnz")? as usize,
            tiles: u64_of(machine, "tiles")? as usize,
            iterations: u64_of(solve, "iterations")? as usize,
            final_residual: f64_of(solve, "final_residual")?,
            seconds: f64_of(solve, "seconds")?,
            // Absent in reports written before host timing existed.
            host_seconds: solve.get("host_seconds").and_then(Json::as_f64).unwrap_or(0.0),
            executor: solve.get("executor").and_then(Json::as_str).unwrap_or_default().to_string(),
            history,
            cycles: CycleBreakdown {
                device: u64_of(cycles, "device")?,
                compute: u64_of(cycles, "compute")?,
                exchange: u64_of(cycles, "exchange")?,
                sync: u64_of(cycles, "sync")?,
                exchange_bytes: u64_of(cycles, "exchange_bytes")?,
                sync_count: u64_of(cycles, "sync_count")?,
                supersteps: u64_of(cycles, "supersteps")?,
                // Absent in reports written before the stat existed.
                label_underflows: cycles
                    .get("label_underflows")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
            },
            labels,
            tile_util: TileUtil {
                used: u64_of(tiles_s, "used")? as usize,
                min: u64_of(tiles_s, "min")?,
                median: u64_of(tiles_s, "median")?,
                max: u64_of(tiles_s, "max")?,
                mean: f64_of(tiles_s, "mean")?,
                balance: f64_of(tiles_s, "balance")?,
            },
            // Absent in reports written before the graph compiler existed.
            compile: v.get("compile").map(CompileReport::from_value).transpose()?,
            // Absent in healthy reports and all reports written before the
            // resilience layer existed.
            resilience: v.get("resilience").map(Resilience::from_value).transpose()?,
            // Absent before schema v2 and in runs without attribution.
            perf: v.get("perf").map(PerfReport::from_value).transpose()?,
            // Absent before schema v3 (the backend abstraction).
            backend: v.get("backend").map(BackendInfo::from_value).transpose()?,
            extra: v.get("extra").and_then(Json::as_obj).map(|o| o.to_vec()).unwrap_or_default(),
        })
    }
}

/// Busy-cycle statistics over tiles that did any work.
pub(crate) fn tile_util(stats: &CycleStats) -> TileUtil {
    let mut busy: Vec<u64> = stats.tile_busy_all().iter().copied().filter(|&c| c > 0).collect();
    busy.sort_unstable();
    if busy.is_empty() {
        return TileUtil::default();
    }
    let used = busy.len();
    let mean = busy.iter().sum::<u64>() as f64 / used as f64;
    let max = busy[used - 1];
    TileUtil {
        used,
        min: busy[0],
        median: busy[used / 2],
        max,
        mean,
        // mean/max over *used* tiles (1.0 = perfectly balanced). Unlike
        // `CycleStats::compute_balance` this ignores idle tiles, so a
        // solve occupying 98 of 5,888 tiles reports the balance of the 98.
        balance: mean / max.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> CycleStats {
        let mut s = CycleStats::new(4);
        s.record_sync(6);
        s.push_label("cg");
        s.record_compute([(0, 10), (1, 30), (2, 20)]);
        s.push_label("spmv");
        s.record_exchange(40);
        s.record_exchange_bytes(1024);
        s.record_compute([(0, 50), (1, 50), (2, 50), (3, 50)]);
        s.pop_label();
        s.record_sync(4);
        s.pop_label();
        s
    }

    #[test]
    fn label_totals_partition_device_cycles() {
        let r = SolveReport::new("t").with_stats(&sample_stats());
        assert_eq!(r.labels_total(), r.cycles.device);
        assert!(r.labels.iter().any(|l| l.name == UNLABELLED && l.total == 6));
        let spmv = r.labels.iter().find(|l| l.name == "spmv").unwrap();
        assert_eq!(spmv.compute, 50);
        assert_eq!(spmv.exchange, 40);
        assert_eq!(spmv.total, 90);
    }

    #[test]
    fn phase_totals_match_stats() {
        let s = sample_stats();
        let r = SolveReport::new("t").with_stats(&s);
        assert_eq!(r.cycles.device, s.device_cycles());
        assert_eq!(r.cycles.compute, s.phase_cycles(Phase::Compute));
        assert_eq!(r.cycles.exchange, s.phase_cycles(Phase::Exchange));
        assert_eq!(r.cycles.sync, s.phase_cycles(Phase::Sync));
        assert_eq!(r.cycles.exchange_bytes, 1024);
        assert_eq!(r.cycles.sync_count, 2);
        // Per-label phase split also partitions each phase total.
        for phase in [Phase::Compute, Phase::Exchange, Phase::Sync] {
            let sum: u64 = r
                .labels
                .iter()
                .map(|l| match phase {
                    Phase::Compute => l.compute,
                    Phase::Exchange => l.exchange,
                    Phase::Sync => l.sync,
                })
                .sum();
            assert_eq!(sum, s.phase_cycles(phase), "{phase:?}");
        }
    }

    #[test]
    fn tile_util_ignores_idle_tiles() {
        let r = SolveReport::new("t").with_stats(&sample_stats());
        // Tile 3 worked once (50), tiles 0..=2 twice.
        assert_eq!(r.tile_util.used, 4);
        assert_eq!(r.tile_util.min, 50);
        assert_eq!(r.tile_util.max, 80);
    }

    #[test]
    fn json_round_trip() {
        let mut r = SolveReport::new("fig5/poisson-8").with_stats(&sample_stats());
        r.solver = Json::obj([("type", Json::from("cg"))]);
        r.n = 64;
        r.nnz = 288;
        r.tiles = 4;
        r.iterations = 12;
        r.final_residual = 3.25e-7;
        r.seconds = 0.001953125;
        r.history = vec![(1, 0.5), (2, 0.125)];
        r.extra.push(("ipus".to_string(), Json::from(2u64)));
        let mut pass = crate::PassStat::new("cleanup", 9);
        pass.steps_after = 7;
        pass.count("nops_removed", 2);
        r.compile = Some(crate::CompileReport {
            optimised: true,
            source_steps: 11,
            plan_steps: 7,
            passes: vec![pass],
        });
        let text = r.to_json();
        let back = SolveReport::from_json(&text).unwrap();
        assert_eq!(back, r);
        // Reports written before the compiler existed parse with None.
        let mut legacy = r.to_value();
        if let Json::Obj(pairs) = &mut legacy {
            pairs.retain(|(k, _)| k != "compile");
        }
        let parsed = SolveReport::from_json(&legacy.to_pretty()).unwrap();
        assert_eq!(parsed.compile, None);
    }

    #[test]
    fn label_underflows_surface_in_report() {
        // Regression: an unbalanced pop_label used to vanish in release
        // builds; it must show up in the report and its JSON.
        let mut s = sample_stats();
        s.pop_label(); // underflow
        let r = SolveReport::new("t").with_stats(&s);
        assert_eq!(r.cycles.label_underflows, 1);
        let back = SolveReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back.cycles.label_underflows, 1);
        // Healthy runs report 0, and old reports without the field parse
        // as 0.
        let healthy = SolveReport::new("t").with_stats(&sample_stats());
        assert_eq!(healthy.cycles.label_underflows, 0);
        let mut legacy = healthy.to_value();
        if let Json::Obj(pairs) = &mut legacy {
            for (k, v) in pairs.iter_mut() {
                if k == "cycles" {
                    if let Json::Obj(cp) = v {
                        cp.retain(|(ck, _)| ck != "label_underflows");
                    }
                }
            }
        }
        let parsed = SolveReport::from_json(&legacy.to_pretty()).unwrap();
        assert_eq!(parsed.cycles.label_underflows, 0);
    }

    #[test]
    fn host_timing_round_trips_and_legacy_reports_parse() {
        let mut r = SolveReport::new("t").with_stats(&sample_stats());
        r.host_seconds = 0.125;
        r.executor = "parallel".to_string();
        let back = SolveReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back.host_seconds, 0.125);
        assert_eq!(back.executor, "parallel");
        // Reports written before host timing existed parse with defaults.
        let mut legacy = r.to_value();
        if let Json::Obj(pairs) = &mut legacy {
            for (k, v) in pairs.iter_mut() {
                if k == "solve" {
                    if let Json::Obj(sp) = v {
                        sp.retain(|(sk, _)| sk != "host_seconds" && sk != "executor");
                    }
                }
            }
        }
        let parsed = SolveReport::from_json(&legacy.to_pretty()).unwrap();
        assert_eq!(parsed.host_seconds, 0.0);
        assert_eq!(parsed.executor, "");
    }

    #[test]
    fn resilience_round_trips_and_legacy_reports_parse() {
        use crate::resilience::{DetectionRecord, Resilience};
        use ipu_sim::fault::FaultEvent;
        let mut r = SolveReport::new("faulted").with_stats(&sample_stats());
        r.resilience = Some(Resilience {
            status: "recovered".to_string(),
            attempts: 2,
            restarts: 1,
            degradations: vec!["preconditioner ilu0 -> jacobi".to_string()],
            faults_injected: vec![FaultEvent {
                superstep: 12,
                tile: 3,
                class: "flip".to_string(),
                detail: "'x'[5] bit 22".to_string(),
            }],
            detections: vec![DetectionRecord {
                attempt: 1,
                kind: "non_finite".to_string(),
                iteration: 14,
                residual: f64::NAN,
                detail: "residual is NaN".to_string(),
            }],
            checkpoints: 3,
            checkpoint_cycles: 420,
            total_device_cycles: 99_000,
        });
        let back = SolveReport::from_json(&r.to_json()).unwrap();
        let res = back.resilience.as_ref().unwrap();
        assert_eq!(res.status, "recovered");
        assert_eq!(res.attempts, 2);
        assert_eq!(res.restarts, 1);
        assert_eq!(res.degradations, vec!["preconditioner ilu0 -> jacobi".to_string()]);
        assert_eq!(res.faults_injected, r.resilience.as_ref().unwrap().faults_injected);
        // NaN residual serialises as null and parses back as NaN.
        assert!(res.detections[0].residual.is_nan());
        assert_eq!(res.detections[0].kind, "non_finite");
        assert_eq!(res.checkpoints, 3);
        assert_eq!(res.checkpoint_cycles, 420);
        assert_eq!(res.total_device_cycles, 99_000);

        // A healthy solve emits no "resilience" key at all — byte-for-byte
        // the PR 1-4 schema.
        let healthy = SolveReport::new("t").with_stats(&sample_stats());
        assert!(!healthy.to_json().contains("resilience"));

        // Reports written before the resilience layer existed (PR 1-4)
        // parse unchanged with `resilience: None`.
        let mut legacy = r.to_value();
        if let Json::Obj(pairs) = &mut legacy {
            pairs.retain(|(k, _)| k != "resilience");
        }
        let parsed = SolveReport::from_json(&legacy.to_pretty()).unwrap();
        assert_eq!(parsed.resilience, None);
        assert_eq!(parsed.cycles, r.cycles);
    }

    #[test]
    fn schema_version_and_perf_round_trip() {
        use crate::perf::{PerfRecorder, PerfReport, StepKind, StepMeta};
        let mut r = SolveReport::new("t").with_stats(&sample_stats());
        assert_eq!(r.schema, SCHEMA_VERSION);
        // A report without a perf section has no "perf" key at all.
        assert!(!r.to_json().contains("\"perf\""));
        let metas = vec![
            StepMeta::control(0),
            StepMeta {
                id: 1,
                kind: StepKind::Execute,
                name: "spmv".into(),
                label: "cg".into(),
                regions: 0,
                max_fanout: 0,
            },
        ];
        let mut rec = PerfRecorder::new(2, 4);
        rec.record_sync(1, 150);
        rec.record_compute(1, &[(0, 10), (1, 30)]);
        rec.record_flops(1, 8, 64);
        let mut perf = PerfReport::build(&metas, &rec, 2.0, 4);
        perf.metrics.counter_add("solve.attempts", 1);
        perf.metrics.observe("solve.host_seconds", &[0.01, 0.1], 0.05);
        r.perf = Some(perf);
        let back = SolveReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.schema, SCHEMA_VERSION);
        let bp = back.perf.as_ref().unwrap();
        assert_eq!(bp.steps_total(), rec.total_cycles());
        assert_eq!(bp.metrics.counter("solve.attempts"), 1);

        // A pre-v2 report (no "schema", no "perf") parses as schema 1 with
        // perf None — backward compatible.
        let mut legacy = r.to_value();
        if let Json::Obj(pairs) = &mut legacy {
            pairs.retain(|(k, _)| k != "schema" && k != "perf");
        }
        let parsed = SolveReport::from_json(&legacy.to_pretty()).unwrap();
        assert_eq!(parsed.schema, 1);
        assert_eq!(parsed.perf, None);
        assert_eq!(parsed.cycles, r.cycles);
    }

    #[test]
    fn backend_section_round_trips_and_legacy_reports_parse() {
        let mut r = SolveReport::new("t").with_stats(&sample_stats());
        // A report without a backend section has no "backend" key at all.
        assert!(!r.to_json().contains("\"backend\""));
        r.backend = Some(BackendInfo {
            name: "cpu:par".to_string(),
            family: "cpu".to_string(),
            timing: "wall-clock".to_string(),
            seconds: 0.25,
        });
        let back = SolveReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        let info = back.backend.as_ref().unwrap();
        assert_eq!(info.name, "cpu:par");
        assert_eq!(info.family, "cpu");
        assert_eq!(info.timing, "wall-clock");
        assert_eq!(info.seconds, 0.25);

        // A v2 report (no "backend" key) parses with None — backward
        // compatible, and re-serialising stamps the current schema.
        let mut legacy = r.to_value();
        if let Json::Obj(pairs) = &mut legacy {
            pairs.retain(|(k, _)| k != "backend");
            for (k, v) in pairs.iter_mut() {
                if k == "schema" {
                    *v = Json::from(2u64);
                }
            }
        }
        let parsed = SolveReport::from_json(&legacy.to_pretty()).unwrap();
        assert_eq!(parsed.schema, 2);
        assert_eq!(parsed.backend, None);
        assert_eq!(parsed.cycles, r.cycles);
        let restamped = SolveReport::from_json(&parsed.to_json()).unwrap();
        assert_eq!(restamped.schema, SCHEMA_VERSION);
    }

    #[test]
    fn from_json_rejects_missing_sections() {
        assert!(SolveReport::from_json(r#"{"name":"x"}"#).is_err());
        assert!(SolveReport::from_json("not json").is_err());
    }
}
