//! The trace recorder and its Chrome trace-event serialisation.
//!
//! The execution engine calls one recorder method per program step,
//! mirroring exactly what it records into `CycleStats`; the recorder keeps
//! its own monotone device clock (in cycles) so that `Σ event durations on
//! the step lane == device_cycles`. Serialisation follows the Chrome
//! trace-event format (`ph: "X"` complete events, `ph: "M"` metadata), with
//! one tick = one device cycle, so Perfetto's time axis reads directly in
//! cycles.

use std::collections::HashMap;
use std::io;
use std::path::Path;

use json::Json;

/// Default number of per-tile lanes emitted into the Chrome trace. Real
/// machines have 1472 tiles per chip; a trace with one lane per tile of a
/// 16-IPU partition would be unusable (and enormous), so only the first
/// `tile_lanes` tiles get individual lanes. Override with the
/// `GRAPHENE_TRACE_TILES` environment variable or
/// [`TraceRecorder::with_tile_lanes`].
pub const DEFAULT_TILE_LANES: usize = 16;

/// Hard cap on recorded events; past it, new events are dropped (counted
/// and reported in the trace metadata) so a long solve cannot exhaust
/// memory.
const MAX_EVENTS: usize = 1_000_000;

/// Which timeline lane an event belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lane {
    /// Device steps: compute sets, exchanges, syncs — the BSP critical
    /// path; durations on this lane sum to `device_cycles`.
    Steps,
    /// Nested label slices (`Prog::Label` scopes).
    Labels,
    /// Busy time of one tile during compute steps.
    Tile(usize),
}

/// One completed slice.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    pub name: String,
    pub lane: Lane,
    /// Start, in device cycles since the recorder was attached.
    pub ts: u64,
    /// Duration in device cycles.
    pub dur: u64,
    /// Extra key/values shown in the trace viewer's args pane.
    pub args: Vec<(&'static str, Json)>,
}

/// Aggregated record of one exchange step (for the text report's
/// exchange-volume table).
#[derive(Clone, Debug)]
pub struct ExchangeRecord {
    pub name: String,
    pub cycles: u64,
    pub bytes: u64,
    pub regions: usize,
}

/// Records engine execution as timeline events; see the module docs.
#[derive(Clone, Debug)]
pub struct TraceRecorder {
    tile_lanes: usize,
    clock: u64,
    events: Vec<TraceEvent>,
    dropped: u64,
    /// (label, start-cycle) for labels currently open.
    open_labels: Vec<(String, u64)>,
    exchanges: Vec<ExchangeRecord>,
    /// compute-set name -> (total makespan cycles, executions).
    compute_totals: HashMap<String, (u64, u64)>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new()
    }
}

/// Parse a `GRAPHENE_TRACE_TILES` value into a tile-lane cap:
/// `None`/empty/unparseable → [`DEFAULT_TILE_LANES`], a number → that many
/// lanes (`0` disables per-tile lanes entirely), `all` (case-insensitive)
/// → one lane per tile, uncapped.
pub fn parse_tile_lanes(v: Option<&str>) -> usize {
    match v {
        Some(s) if s.eq_ignore_ascii_case("all") => usize::MAX,
        Some(s) => s.trim().parse().unwrap_or(DEFAULT_TILE_LANES),
        None => DEFAULT_TILE_LANES,
    }
}

impl TraceRecorder {
    /// New recorder; tile-lane cap taken from `GRAPHENE_TRACE_TILES` when
    /// set (see [`parse_tile_lanes`]), else [`DEFAULT_TILE_LANES`].
    pub fn new() -> TraceRecorder {
        let env = std::env::var("GRAPHENE_TRACE_TILES").ok();
        let lanes = parse_tile_lanes(env.as_deref());
        TraceRecorder {
            tile_lanes: lanes,
            clock: 0,
            events: Vec::new(),
            dropped: 0,
            open_labels: Vec::new(),
            exchanges: Vec::new(),
            compute_totals: HashMap::new(),
        }
    }

    /// Set the number of per-tile lanes.
    pub fn with_tile_lanes(mut self, lanes: usize) -> TraceRecorder {
        self.tile_lanes = lanes;
        self
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() >= MAX_EVENTS {
            self.dropped += 1;
        } else {
            self.events.push(ev);
        }
    }

    // ------------------------------------------------------------------
    // Recording (driven by the execution engine)
    // ------------------------------------------------------------------

    /// One compute superstep. `per_tile` lists each participating tile's
    /// busy cycles; device time advances by the maximum (BSP makespan).
    ///
    /// Tile lane events are emitted in the order given. The engine always
    /// supplies `per_tile` sorted by tile id — both host executors merge
    /// their per-worker cycle buffers in tile-id order — so the recorded
    /// timeline (and its Chrome-trace serialisation) is bit-identical
    /// whichever executor ran and whatever the host thread count was.
    pub fn compute(&mut self, name: &str, per_tile: &[(usize, u64)]) {
        let makespan = per_tile.iter().map(|&(_, c)| c).max().unwrap_or(0);
        let start = self.clock;
        for &(tile, cycles) in per_tile {
            if tile < self.tile_lanes && cycles > 0 {
                self.push(TraceEvent {
                    name: name.to_string(),
                    lane: Lane::Tile(tile),
                    ts: start,
                    dur: cycles,
                    args: Vec::new(),
                });
            }
        }
        self.push(TraceEvent {
            name: name.to_string(),
            lane: Lane::Steps,
            ts: start,
            dur: makespan,
            args: vec![("phase", Json::from("compute")), ("tiles", Json::from(per_tile.len()))],
        });
        self.clock += makespan;
        let e = self.compute_totals.entry(name.to_string()).or_insert((0, 0));
        e.0 += makespan;
        e.1 += 1;
    }

    /// One exchange phase: `cycles` of device time moving `bytes` over the
    /// fabric in `regions` distinct source regions.
    pub fn exchange(&mut self, name: &str, cycles: u64, bytes: u64, regions: usize) {
        self.push(TraceEvent {
            name: name.to_string(),
            lane: Lane::Steps,
            ts: self.clock,
            dur: cycles,
            args: vec![
                ("phase", Json::from("exchange")),
                ("bytes", Json::from(bytes)),
                ("regions", Json::from(regions)),
            ],
        });
        self.clock += cycles;
        self.exchanges.push(ExchangeRecord { name: name.to_string(), cycles, bytes, regions });
    }

    /// One BSP synchronisation barrier.
    pub fn sync(&mut self, cycles: u64) {
        self.push(TraceEvent {
            name: "sync".to_string(),
            lane: Lane::Steps,
            ts: self.clock,
            dur: cycles,
            args: vec![("phase", Json::from("sync"))],
        });
        self.clock += cycles;
    }

    /// A zero-duration marker on the Steps lane — fault injections,
    /// detections and recovery actions use these so they line up with the
    /// device timeline without perturbing the clock.
    pub fn instant(&mut self, name: &str, detail: &str) {
        self.push(TraceEvent {
            name: name.to_string(),
            lane: Lane::Steps,
            ts: self.clock,
            dur: 0,
            args: vec![("phase", Json::from("instant")), ("detail", Json::from(detail))],
        });
    }

    /// Enter a named scope (`Prog::Label`).
    pub fn begin_label(&mut self, name: &str) {
        self.open_labels.push((name.to_string(), self.clock));
    }

    /// Leave the innermost scope, emitting its slice.
    pub fn end_label(&mut self) {
        let popped = self.open_labels.pop();
        debug_assert!(popped.is_some(), "end_label without begin_label");
        if let Some((name, start)) = popped {
            let depth = self.open_labels.len();
            self.push(TraceEvent {
                name,
                lane: Lane::Labels,
                ts: start,
                dur: self.clock - start,
                args: vec![("depth", Json::from(depth))],
            });
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Device cycles recorded so far (mirrors `CycleStats::device_cycles`
    /// for the steps recorded through this recorder).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// All recorded events (unsorted; serialisation sorts by start time).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events dropped past the recorder's memory cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Per-exchange-step records, in execution order.
    pub fn exchanges(&self) -> &[ExchangeRecord] {
        &self.exchanges
    }

    /// Exchange steps aggregated by name: `(name, executions, cycles,
    /// bytes)`, sorted descending by bytes.
    pub fn exchanges_by_name(&self) -> Vec<(String, u64, u64, u64)> {
        let mut agg: HashMap<&str, (u64, u64, u64)> = HashMap::new();
        for e in &self.exchanges {
            let a = agg.entry(&e.name).or_insert((0, 0, 0));
            a.0 += 1;
            a.1 += e.cycles;
            a.2 += e.bytes;
        }
        let mut v: Vec<_> =
            agg.into_iter().map(|(n, (c, cy, b))| (n.to_string(), c, cy, b)).collect();
        v.sort_by(|a, b| b.3.cmp(&a.3).then(a.0.cmp(&b.0)));
        v
    }

    /// Compute sets aggregated by name: `(name, total makespan cycles,
    /// executions)`, sorted descending by cycles.
    pub fn compute_sets_sorted(&self) -> Vec<(String, u64, u64)> {
        let mut v: Vec<_> =
            self.compute_totals.iter().map(|(n, &(c, k))| (n.clone(), c, k)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    // ------------------------------------------------------------------
    // Chrome trace-event serialisation
    // ------------------------------------------------------------------

    /// Serialise to the Chrome trace-event JSON object format. Loadable in
    /// Perfetto / `chrome://tracing`; one tick = one device cycle. Events
    /// are sorted by start time (ties: longer slice first, so nesting
    /// renders correctly), giving monotonically non-decreasing `ts`.
    pub fn to_chrome_trace(&self) -> Json {
        const PID_DEVICE: u32 = 0;
        const PID_TILES: u32 = 1;
        const TID_STEPS: u32 = 0;
        const TID_LABELS: u32 = 1;

        let mut events: Vec<Json> = Vec::new();
        let meta = |name: &str, pid: u32, tid: Option<u32>, value: &str| {
            let mut pairs = vec![
                ("name".to_string(), Json::from(name)),
                ("ph".to_string(), Json::from("M")),
                ("ts".to_string(), Json::from(0u64)),
                ("pid".to_string(), Json::from(pid)),
            ];
            if let Some(t) = tid {
                pairs.push(("tid".to_string(), Json::from(t)));
            }
            pairs.push(("args".to_string(), Json::obj([("name", Json::from(value))])));
            Json::Obj(pairs)
        };
        events.push(meta("process_name", PID_DEVICE, None, "device"));
        events.push(meta("thread_name", PID_DEVICE, Some(TID_STEPS), "steps"));
        events.push(meta("thread_name", PID_DEVICE, Some(TID_LABELS), "labels"));
        events.push(meta("process_name", PID_TILES, None, "tiles"));
        // Sized by the highest tile lane actually recorded (not by the
        // cap, which may be "all tiles" = usize::MAX).
        let max_tile = self
            .events
            .iter()
            .filter_map(|e| match e.lane {
                Lane::Tile(t) => Some(t),
                _ => None,
            })
            .max();
        let mut tile_named = vec![false; max_tile.map_or(0, |t| t + 1)];
        for ev in &self.events {
            if let Lane::Tile(t) = ev.lane {
                if t < tile_named.len() && !tile_named[t] {
                    tile_named[t] = true;
                }
            }
        }
        for (t, named) in tile_named.iter().enumerate() {
            if *named {
                events.push(meta("thread_name", PID_TILES, Some(t as u32), &format!("tile {t}")));
            }
        }

        // Slices, sorted by (ts asc, dur desc): non-decreasing timestamps
        // and proper nesting on each lane. Labels still open when the
        // trace is serialised are closed "now" (at the current clock).
        let mut slices: Vec<&TraceEvent> = self.events.iter().collect();
        let synth: Vec<TraceEvent> = self
            .open_labels
            .iter()
            .enumerate()
            .map(|(depth, (name, start))| TraceEvent {
                name: name.clone(),
                lane: Lane::Labels,
                ts: *start,
                dur: self.clock - start,
                args: vec![("depth", Json::from(depth)), ("open", Json::from(true))],
            })
            .collect();
        slices.extend(synth.iter());
        slices.sort_by(|a, b| a.ts.cmp(&b.ts).then(b.dur.cmp(&a.dur)));

        // Cumulative counter series (ph "C") derived from the sorted slice
        // stream: exchange bytes and sync count over device time. Perfetto
        // renders these as step graphs under the device process.
        let mut cum_bytes = 0u64;
        let mut cum_syncs = 0u64;
        for ev in slices {
            let (pid, tid) = match ev.lane {
                Lane::Steps => (PID_DEVICE, TID_STEPS),
                Lane::Labels => (PID_DEVICE, TID_LABELS),
                Lane::Tile(t) => (PID_TILES, t as u32),
            };
            let mut pairs = vec![
                ("name".to_string(), Json::from(ev.name.as_str())),
                ("ph".to_string(), Json::from("X")),
                ("ts".to_string(), Json::from(ev.ts)),
                ("dur".to_string(), Json::from(ev.dur)),
                ("pid".to_string(), Json::from(pid)),
                ("tid".to_string(), Json::from(tid)),
            ];
            if !ev.args.is_empty() {
                pairs.push((
                    "args".to_string(),
                    Json::Obj(ev.args.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()),
                ));
            }
            events.push(Json::Obj(pairs));
            if ev.lane != Lane::Steps {
                continue;
            }
            let phase = ev.args.iter().find(|(k, _)| *k == "phase").and_then(|(_, v)| v.as_str());
            let counter = match phase {
                Some("exchange") => {
                    cum_bytes += ev
                        .args
                        .iter()
                        .find(|(k, _)| *k == "bytes")
                        .and_then(|(_, v)| v.as_u64())
                        .unwrap_or(0);
                    Some(("exchange bytes", Json::obj([("bytes", Json::from(cum_bytes))])))
                }
                Some("sync") => {
                    cum_syncs += 1;
                    Some(("syncs", Json::obj([("count", Json::from(cum_syncs))])))
                }
                _ => None,
            };
            if let Some((name, args)) = counter {
                events.push(Json::obj([
                    ("name", Json::from(name)),
                    ("ph", Json::from("C")),
                    ("ts", Json::from(ev.ts)),
                    ("pid", Json::from(PID_DEVICE)),
                    ("args", args),
                ]));
            }
        }

        Json::obj([
            ("traceEvents", Json::Arr(events)),
            (
                "otherData",
                Json::obj([
                    ("clock", Json::from("ipu device cycles (1 trace tick = 1 cycle)")),
                    ("device_cycles", Json::from(self.clock)),
                    ("dropped_events", Json::from(self.dropped)),
                ]),
            ),
        ])
    }

    /// Write the Chrome trace (compact JSON) to `path`.
    pub fn write_chrome_trace(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_chrome_trace().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceRecorder {
        let mut t = TraceRecorder::new().with_tile_lanes(4);
        t.begin_label("solver");
        t.sync(10);
        t.exchange("halo", 20, 512, 3);
        t.begin_label("spmv");
        t.compute("spmv_cs", &[(0, 100), (1, 80), (9, 40)]);
        t.end_label();
        t.compute("axpy", &[(0, 5), (1, 5)]);
        t.end_label();
        t
    }

    #[test]
    fn clock_sums_step_durations() {
        let t = sample();
        assert_eq!(t.clock(), 10 + 20 + 100 + 5);
        let steps: u64 = t.events().iter().filter(|e| e.lane == Lane::Steps).map(|e| e.dur).sum();
        assert_eq!(steps, t.clock());
    }

    #[test]
    fn tile_lanes_are_capped() {
        let t = sample();
        // Tile 9 exceeds the 4-lane cap and must not appear.
        assert!(t.events().iter().all(|e| e.lane != Lane::Tile(9)));
        assert!(t.events().iter().any(|e| e.lane == Lane::Tile(0)));
    }

    #[test]
    fn labels_nest_and_span() {
        let t = sample();
        let labels: Vec<_> = t.events().iter().filter(|e| e.lane == Lane::Labels).collect();
        assert_eq!(labels.len(), 2);
        let spmv = labels.iter().find(|e| e.name == "spmv").unwrap();
        let solver = labels.iter().find(|e| e.name == "solver").unwrap();
        assert_eq!(spmv.dur, 100);
        assert_eq!(solver.ts, 0);
        assert_eq!(solver.dur, t.clock());
        // Proper nesting.
        assert!(solver.ts <= spmv.ts && spmv.ts + spmv.dur <= solver.ts + solver.dur);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_monotone_ts() {
        let t = sample();
        let text = t.to_chrome_trace().to_string();
        let v = Json::parse(&text).expect("valid JSON");
        let evs = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(!evs.is_empty());
        let mut last = 0u64;
        for e in evs {
            let ts = e.get("ts").unwrap().as_u64().unwrap();
            assert!(ts >= last, "ts regressed: {ts} < {last}");
            last = ts;
            let ph = e.get("ph").unwrap().as_str().unwrap();
            assert!(ph == "X" || ph == "M" || ph == "C");
            if ph == "X" {
                assert!(e.get("dur").unwrap().as_u64().is_some());
            }
        }
        // Metadata names both processes.
        assert!(text.contains("\"device\"") && text.contains("\"tiles\""));
    }

    #[test]
    fn counter_events_accumulate_exchange_bytes_and_syncs() {
        let mut t = sample();
        t.exchange("halo", 5, 100, 1);
        let v = t.to_chrome_trace();
        let evs = v.get("traceEvents").unwrap().as_arr().unwrap();
        let bytes: Vec<u64> = evs
            .iter()
            .filter(|e| {
                e.get("ph").and_then(Json::as_str) == Some("C")
                    && e.get("name").and_then(Json::as_str) == Some("exchange bytes")
            })
            .map(|e| e.get("args").unwrap().get("bytes").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(bytes, vec![512, 612]);
        let syncs: Vec<u64> = evs
            .iter()
            .filter(|e| {
                e.get("ph").and_then(Json::as_str) == Some("C")
                    && e.get("name").and_then(Json::as_str) == Some("syncs")
            })
            .map(|e| e.get("args").unwrap().get("count").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(syncs, vec![1]);
    }

    #[test]
    fn tile_lane_cap_parses_from_env_values() {
        assert_eq!(parse_tile_lanes(None), DEFAULT_TILE_LANES);
        assert_eq!(parse_tile_lanes(Some("4")), 4);
        assert_eq!(parse_tile_lanes(Some(" 32 ")), 32);
        assert_eq!(parse_tile_lanes(Some("0")), 0);
        assert_eq!(parse_tile_lanes(Some("all")), usize::MAX);
        assert_eq!(parse_tile_lanes(Some("ALL")), usize::MAX);
        assert_eq!(parse_tile_lanes(Some("nonsense")), DEFAULT_TILE_LANES);
        assert_eq!(parse_tile_lanes(Some("")), DEFAULT_TILE_LANES);

        // The parsed cap is respected by the recorder: a lane count of 2
        // drops tiles ≥ 2, "all" keeps every tile, 0 keeps none.
        let mut capped = TraceRecorder::new().with_tile_lanes(parse_tile_lanes(Some("2")));
        capped.compute("cs", &[(0, 5), (1, 5), (2, 5), (9, 5)]);
        assert!(capped.events().iter().any(|e| e.lane == Lane::Tile(1)));
        assert!(capped.events().iter().all(|e| e.lane != Lane::Tile(2)));
        let mut all = TraceRecorder::new().with_tile_lanes(parse_tile_lanes(Some("all")));
        all.compute("cs", &[(0, 5), (9, 5)]);
        assert!(all.events().iter().any(|e| e.lane == Lane::Tile(9)));
        all.to_chrome_trace(); // uncapped lanes must not blow up serialisation
        let mut none = TraceRecorder::new().with_tile_lanes(parse_tile_lanes(Some("0")));
        none.compute("cs", &[(0, 5)]);
        assert!(none.events().iter().all(|e| !matches!(e.lane, Lane::Tile(_))));
    }

    #[test]
    fn open_labels_are_closed_in_serialisation() {
        let mut t = TraceRecorder::new().with_tile_lanes(1);
        t.begin_label("dangling");
        t.sync(7);
        let v = t.to_chrome_trace();
        let evs = v.get("traceEvents").unwrap().as_arr().unwrap();
        let found = evs.iter().any(|e| {
            e.get("name").and_then(Json::as_str) == Some("dangling")
                && e.get("dur").and_then(Json::as_u64) == Some(7)
        });
        assert!(found, "open label missing from trace");
    }

    #[test]
    fn identical_recordings_serialise_identically() {
        // The dual-executor guarantee leans on this: equal event streams
        // (per-tile lists pre-sorted by tile id) must produce equal bytes.
        let a = sample().to_chrome_trace().to_string();
        let b = sample().to_chrome_trace().to_string();
        assert_eq!(a, b);
    }

    #[test]
    fn aggregations_sum_per_name() {
        let mut t = sample();
        t.exchange("halo", 5, 100, 1);
        let ex = t.exchanges_by_name();
        assert_eq!(ex[0].0, "halo");
        assert_eq!(ex[0].1, 2); // executions
        assert_eq!(ex[0].2, 25); // cycles
        assert_eq!(ex[0].3, 612); // bytes
        let cs = t.compute_sets_sorted();
        assert_eq!(cs[0].0, "spmv_cs");
        assert_eq!(cs[0].1, 100);
    }
}
