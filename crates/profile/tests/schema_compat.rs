//! Backward compatibility: solve reports written before schema v2 (the
//! performance-attribution PR) must keep parsing forever.
//!
//! The fixture is a frozen, hand-verified report in the PR-5-era shape —
//! no `"schema"` key, no `"perf"` section, but with the compile and
//! resilience sections that existed by then. If a schema change ever
//! breaks this test, the parser lost compatibility with every
//! `results/*.json` artifact already on disk in the wild.

use profile::{SolveReport, SCHEMA_VERSION, UNLABELLED};

const FIXTURE: &str = include_str!("fixtures/pre_pr6_report.json");

#[test]
fn pre_pr6_report_parses_as_schema_v1() {
    let r = SolveReport::from_json(FIXTURE).expect("frozen pre-PR-6 fixture must parse");

    // Reports without a "schema" key are, by definition, version 1; the
    // sections added in v2 parse as absent rather than erroring.
    assert_eq!(r.schema, 1);
    assert_eq!(r.perf, None);
    // ... as does the v3 "backend" section: pre-backend-abstraction
    // reports parse with no backend attribution rather than erroring.
    assert!(r.backend.is_none());

    // The v1 payload survives unchanged.
    assert_eq!(r.name, "fig8/poisson2d-32");
    assert_eq!(r.n, 1024);
    assert_eq!(r.nnz, 4992);
    assert_eq!(r.tiles, 32);
    assert_eq!(r.iterations, 41);
    assert_eq!(r.executor, "sequential");
    assert_eq!(r.history.len(), 4);
    assert_eq!(r.cycles.device, 887_040);
    assert_eq!(r.cycles.supersteps, 1245);
    assert_eq!(r.labels_total(), r.cycles.device, "label partition invariant");
    assert!(r.labels.iter().any(|l| l.name == UNLABELLED));
    let compile = r.compile.as_ref().expect("PR-4 compile section");
    assert_eq!(compile.plan_steps, 161);
    let res = r.resilience.as_ref().expect("PR-5 resilience section");
    assert_eq!(res.attempts, 2);
    assert!(res.detections[0].residual.is_nan(), "null residual parses as NaN");
}

#[test]
fn reserializing_a_v1_report_stamps_the_current_schema() {
    let r = SolveReport::from_json(FIXTURE).unwrap();
    // Writing the report back emits the current schema version (the
    // version records the writer, not the reader), and the round trip
    // preserves everything but that stamp.
    let back = SolveReport::from_json(&r.to_json()).unwrap();
    assert_eq!(back.schema, SCHEMA_VERSION);
    assert_eq!(back.cycles, r.cycles);
    assert_eq!(back.labels, r.labels);
    // The NaN detection residual defeats PartialEq; compare the section
    // through its JSON (NaN serialises as null in both).
    let res_json = |r: &SolveReport| r.resilience.as_ref().unwrap().to_value().to_pretty();
    assert_eq!(res_json(&back), res_json(&r));
    assert_eq!(back.perf, None);
    assert!(back.backend.is_none(), "absent backend section stays absent");
}

#[test]
fn v2_reports_without_a_backend_section_parse_as_backendless() {
    // A v2-era artifact: explicit "schema": 2, no "backend" key. The v3
    // section is additive, so the report parses with `backend: None`.
    let mut v = SolveReport::from_json(FIXTURE).unwrap().to_value();
    if let json::Json::Obj(pairs) = &mut v {
        pairs.retain(|(k, _)| k != "backend");
        for (k, val) in pairs.iter_mut() {
            if k == "schema" {
                *val = json::Json::from(2u64);
            }
        }
    }
    let r = SolveReport::from_value(&v).expect("v2 artifact must keep parsing");
    assert_eq!(r.schema, 2);
    assert!(r.backend.is_none());
}
