//! The serve engine: admission, worker fleet, terminal accounting.
//!
//! One `Mutex<State>` guards the queues, the outcome map and the
//! counters; two condvars signal it (`work`: jobs arrived or requeued,
//! `done`: a job reached a terminal state). Workers are plain
//! `std::thread`s — backend handles hold `Rc` state and are not `Send`,
//! so each worker leases its own handle from the shared
//! [`BackendPool`] and keeps thread-local plan caches.
//!
//! The job state machine (documented in DESIGN.md §17):
//!
//! ```text
//! submit ─┬─ rejected (QueueFull / Rejected)                [terminal]
//!         └─ queued ── picked ─┬─ expired → DeadlineExceeded [terminal]
//!               ▲              └─ running ─┬─ Done            [terminal]
//!               │                          ├─ DeadlineExceeded[terminal]
//!               │                          ├─ failed ─┬─ retry (backoff)
//!               │                          │          └─ Quarantined
//!               │                          └─ panic ─┬─ requeue ──┐
//!               │                (worker respawned)  └─ Quarantined│
//!               └──────────────────────────────────────────────────┘
//! ```
//!
//! Every admitted job ends in exactly one of Done / Quarantined /
//! DeadlineExceeded; every submitted job is that or rejected at
//! admission — [`ServeStats::accounting_ok`] checks the arithmetic.

use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use backend::pool::BackendPool;
use backend::{Backend, Capabilities, PreparedPlan, SolvePlan};
use graphene_core::backends::backend_for;
use graphene_core::resilience::{splitmix64, target_tolerance};
use graphene_core::runner::{self, TOLERANCE_SAFETY};
use json::Json;
use profile::metrics::Metrics;
use sparse::formats::CsrMatrix;

use crate::job::{is_deadline, x_digest, JobOutcome, JobResult, JobSpec};
use crate::queue::{job_cost, QueuedJob, TenantQueues};
use crate::{JobId, ServeError, ServeOptions};

/// Latency histogram bounds, ms (shared by the queue/solve histograms).
const LATENCY_BOUNDS_MS: [f64; 10] =
    [1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0, 5000.0];

// ----------------------------------------------------------------------
// Shared state
// ----------------------------------------------------------------------

struct State {
    queues: TenantQueues,
    /// Terminal outcome of every accepted job, keyed by id.
    results: BTreeMap<JobId, JobOutcome>,
    submitted: u64,
    accepted: u64,
    rejected: u64,
    /// Jobs picked by a worker and not yet terminal or requeued.
    inflight: u64,
    retries: u64,
    sdc_escapes: u64,
    /// (worker id, job id) for every panic caught at a worker boundary.
    worker_losses: Vec<(usize, JobId)>,
    next_worker_id: usize,
    shutdown: bool,
    metrics: Metrics,
    /// Admission→terminal latency of each completed (Done) job, ms.
    latencies_ms: Vec<f64>,
    tenants: BTreeMap<String, TenantCounts>,
}

struct Shared {
    opts: ServeOptions,
    pool: BackendPool,
    state: Mutex<State>,
    work: Condvar,
    done: Condvar,
    /// Worker join handles — grows when a panicked worker is respawned.
    handles: Mutex<Vec<JoinHandle<()>>>,
}

fn lock<'a>(m: &'a Mutex<State>) -> MutexGuard<'a, State> {
    // A worker can only panic outside this lock (solves run unlocked),
    // so a poisoned mutex still holds consistent state.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ----------------------------------------------------------------------
// Engine
// ----------------------------------------------------------------------

/// The running service: submit jobs, await outcomes, then
/// [`finish`](ServeEngine::finish) for the stats.
pub struct ServeEngine {
    shared: Arc<Shared>,
    started: Instant,
}

impl ServeEngine {
    /// Validate the configuration, probe the backend's capabilities
    /// against what the fleet needs, and spawn the workers.
    pub fn start(opts: ServeOptions) -> Result<ServeEngine, ServeError> {
        if opts.workers == 0 || opts.queue_capacity == 0 || opts.max_attempts == 0 {
            return Err(ServeError::Rejected {
                reason: "workers, queue_capacity and max_attempts must all be >= 1".into(),
            });
        }
        // A storm must parse and the backend must honour fault plans —
        // checked once here, not per job mid-flight.
        if let Some(storm) = &opts.storm {
            storm
                .plan_for(1)
                .map_err(|e| ServeError::Rejected { reason: format!("invalid storm spec: {e}") })?;
        }
        let required =
            Capabilities { fault_injection: opts.storm.is_some(), ..Capabilities::default() };
        let spec = opts.backend;
        let base = opts.base.clone();
        let pool = BackendPool::new(required, Box::new(move || backend_for(spec, &base)))
            .map_err(|e| ServeError::Rejected { reason: e.to_string() })?;

        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queues: TenantQueues::new(opts.queue_capacity, opts.quantum),
                results: BTreeMap::new(),
                submitted: 0,
                accepted: 0,
                rejected: 0,
                inflight: 0,
                retries: 0,
                sdc_escapes: 0,
                worker_losses: Vec::new(),
                next_worker_id: opts.workers,
                shutdown: false,
                metrics: Metrics::new(),
                latencies_ms: Vec::new(),
                tenants: BTreeMap::new(),
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            handles: Mutex::new(Vec::new()),
            pool,
            opts,
        });
        let workers = shared.opts.workers;
        {
            let mut handles = shared.handles.lock().unwrap_or_else(|e| e.into_inner());
            for id in 0..workers {
                handles.push(spawn_worker(Arc::clone(&shared), id));
            }
        }
        Ok(ServeEngine { shared, started: Instant::now() })
    }

    /// Admit one job. Returns its id, or a typed rejection — admission
    /// never blocks and never drops silently.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, ServeError> {
        if spec.b.len() != spec.a.nrows || spec.a.nrows != spec.a.ncols {
            return Err(ServeError::Rejected {
                reason: format!(
                    "dimension mismatch: A is {}x{}, b has {} entries",
                    spec.a.nrows,
                    spec.a.ncols,
                    spec.b.len()
                ),
            });
        }
        if spec.faults.is_some() && !self.shared.pool.capabilities().fault_injection {
            return Err(ServeError::Rejected {
                reason: format!(
                    "backend `{}` does not support fault injection",
                    self.shared.pool.name()
                ),
            });
        }
        let now = Instant::now();
        let deadline = spec.deadline.or(self.shared.opts.default_deadline);
        let mut st = lock(&self.shared.state);
        if st.shutdown {
            return Err(ServeError::Rejected { reason: "engine is shutting down".into() });
        }
        st.submitted += 1;
        let id = st.submitted;
        let tenant = spec.tenant.clone();
        st.tenants.entry(tenant.clone()).or_default().submitted += 1;
        let cost = job_cost(spec.a.nnz());
        let job = QueuedJob {
            id,
            spec,
            attempts: 0,
            enqueued: now,
            deadline_at: deadline.map(|d| now + d),
            cost,
        };
        match st.queues.admit(job) {
            Ok(()) => {
                st.accepted += 1;
                let depth = st.queues.len() as f64;
                st.metrics.gauge_set("serve.queue_depth", depth);
                drop(st);
                self.shared.work.notify_one();
                Ok(id)
            }
            Err(e) => {
                st.rejected += 1;
                st.tenants.entry(tenant).or_default().rejected += 1;
                st.metrics.counter_add("serve.rejected", 1);
                Err(e)
            }
        }
    }

    /// Terminal outcome of an accepted job, if it has reached one.
    pub fn outcome(&self, id: JobId) -> Option<JobOutcome> {
        lock(&self.shared.state).results.get(&id).cloned()
    }

    /// Block until every accepted job has a terminal outcome, or the
    /// timeout elapses ([`ServeError::Timeout`] — the CI deadlock gate).
    pub fn drain(&self, timeout: Duration) -> Result<(), ServeError> {
        let start = Instant::now();
        let mut st = lock(&self.shared.state);
        while (st.results.len() as u64) < st.accepted {
            let left = timeout
                .checked_sub(start.elapsed())
                .ok_or(ServeError::Timeout { waited_ms: start.elapsed().as_millis() as u64 })?;
            let (guard, res) =
                self.shared.done.wait_timeout(st, left).unwrap_or_else(|e| e.into_inner());
            st = guard;
            if res.timed_out() && (st.results.len() as u64) < st.accepted {
                return Err(ServeError::Timeout { waited_ms: start.elapsed().as_millis() as u64 });
            }
        }
        Ok(())
    }

    /// Stop accepting work, let queued jobs finish, join the workers,
    /// and return the final statistics.
    pub fn finish(self) -> ServeStats {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        // Respawned workers push new handles while we join — drain until
        // the vector stays empty.
        loop {
            let handle = {
                let mut handles = self.shared.handles.lock().unwrap_or_else(|e| e.into_inner());
                handles.pop()
            };
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        let st = lock(&self.shared.state);
        let wall = self.started.elapsed().as_secs_f64().max(1e-9);
        let mut done = 0u64;
        let mut quarantined = 0u64;
        let mut deadline_exceeded = 0u64;
        for outcome in st.results.values() {
            match outcome {
                JobOutcome::Done(_) => done += 1,
                JobOutcome::Quarantined { .. } => quarantined += 1,
                JobOutcome::DeadlineExceeded { .. } => deadline_exceeded += 1,
            }
        }
        let mut lat = st.latencies_ms.clone();
        lat.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let q = |q: f64| -> f64 {
            if lat.is_empty() {
                return 0.0;
            }
            let idx = ((q * lat.len() as f64).ceil() as usize).clamp(1, lat.len()) - 1;
            lat[idx]
        };
        ServeStats {
            submitted: st.submitted,
            accepted: st.accepted,
            rejected: st.rejected,
            done,
            quarantined,
            deadline_exceeded,
            retries: st.retries,
            sdc_escapes: st.sdc_escapes,
            worker_losses: st.worker_losses.len() as u64,
            wall_seconds: wall,
            solves_per_sec: done as f64 / wall,
            p50_ms: q(0.50),
            p99_ms: q(0.99),
            tenants: st.tenants.clone(),
            metrics: st.metrics.clone(),
        }
    }
}

// ----------------------------------------------------------------------
// Workers
// ----------------------------------------------------------------------

/// Worker-thread-local execution context: the leased backend handle and
/// the plan-coalescing caches. Discarded (with the thread) when a panic
/// tears the worker down — a respawned worker starts clean.
struct WorkerCtx {
    handle: Box<dyn Backend>,
    /// Matrix identity (`Arc` data pointer) → the worker's `Rc` copy.
    mats: HashMap<usize, Rc<CsrMatrix>>,
    /// (matrix identity, solver-config JSON) → prepared plan. Many jobs
    /// sharing one structure and solver coalesce onto one prepare.
    plans: HashMap<(usize, String), Box<dyn PreparedPlan>>,
}

/// Cache growth bound: past this many distinct (matrix, solver) pairs
/// the worker's caches reset (simple epoch eviction — correctness does
/// not depend on cache contents).
const PLAN_CACHE_CAP: usize = 32;

fn spawn_worker(shared: Arc<Shared>, worker_id: usize) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("serve-worker-{worker_id}"))
        .spawn(move || worker_main(shared, worker_id))
        .expect("spawn serve worker")
}

fn worker_main(shared: Arc<Shared>, worker_id: usize) {
    let mut ctx =
        WorkerCtx { handle: shared.pool.lease(), mats: HashMap::new(), plans: HashMap::new() };
    loop {
        // ---- pick ----------------------------------------------------
        let mut job = {
            let mut st = lock(&shared.state);
            loop {
                if let Some(job) = st.queues.pick() {
                    st.inflight += 1;
                    let depth = st.queues.len() as f64;
                    st.metrics.gauge_set("serve.queue_depth", depth);
                    break job;
                }
                if st.shutdown && st.inflight == 0 {
                    return;
                }
                st = shared.work.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };

        // ---- queued expiry -------------------------------------------
        if job.deadline_at.is_some_and(|at| Instant::now() >= at) {
            let outcome = JobOutcome::DeadlineExceeded {
                attempts: job.attempts,
                total_ms: job.enqueued.elapsed().as_millis() as u64,
            };
            record_terminal(&shared, &job, outcome);
            continue;
        }

        // ---- run, with the panic boundary ----------------------------
        let result = catch_unwind(AssertUnwindSafe(|| run_job(&shared, &mut job, &mut ctx)));
        match result {
            Ok(outcome) => record_terminal(&shared, &job, outcome),
            Err(payload) => {
                // Worker-crash containment: record the loss, requeue or
                // quarantine the job, respawn a replacement worker, and
                // let this thread (and its possibly-poisoned caches) die.
                let msg = panic_message(&payload);
                let respawn_id = {
                    let mut st = lock(&shared.state);
                    st.worker_losses.push((worker_id, job.id));
                    st.metrics.counter_add("serve.worker_losses", 1);
                    let id = st.next_worker_id;
                    st.next_worker_id += 1;
                    id
                };
                if job.attempts >= shared.opts.max_attempts {
                    let outcome = JobOutcome::Quarantined {
                        attempts: job.attempts,
                        last_error: format!("panic: {msg}"),
                    };
                    record_terminal(&shared, &job, outcome);
                } else {
                    // `retries` is settled from the job's final attempt
                    // count at terminal time — only the requeue event is
                    // counted here.
                    let mut st = lock(&shared.state);
                    st.inflight -= 1;
                    st.metrics.counter_add("serve.requeues", 1);
                    st.queues.requeue(job);
                    drop(st);
                    shared.work.notify_one();
                }
                let handle = spawn_worker(Arc::clone(&shared), respawn_id);
                shared.handles.lock().unwrap_or_else(|e| e.into_inner()).push(handle);
                return;
            }
        }
    }
}

/// Record a terminal outcome: counters, per-tenant accounting, latency
/// observation, and both condvars (a finished job frees a worker *and*
/// may satisfy a drain).
fn record_terminal(shared: &Shared, job: &QueuedJob, outcome: JobOutcome) {
    let total_ms = job.enqueued.elapsed().as_millis() as f64;
    let tenant_name = job.spec.tenant.clone();
    let mut st = lock(&shared.state);
    match &outcome {
        JobOutcome::Done(r) => {
            st.tenants.entry(tenant_name).or_default().done += 1;
            st.retries += (r.attempts.saturating_sub(1)) as u64;
            if r.sdc_escape {
                st.sdc_escapes += 1;
                st.metrics.counter_add("serve.sdc_escapes", 1);
            }
            st.metrics.counter_add("serve.done", 1);
            st.metrics.observe("serve.queue_ms", &LATENCY_BOUNDS_MS, r.queue_ms as f64);
            st.metrics.observe("serve.solve_ms", &LATENCY_BOUNDS_MS, r.solve_ms as f64);
            st.metrics.observe("serve.total_ms", &LATENCY_BOUNDS_MS, total_ms);
            st.latencies_ms.push(total_ms);
        }
        JobOutcome::Quarantined { attempts, .. } => {
            st.tenants.entry(tenant_name).or_default().quarantined += 1;
            st.retries += (attempts.saturating_sub(1)) as u64;
            st.metrics.counter_add("serve.quarantined", 1);
        }
        JobOutcome::DeadlineExceeded { .. } => {
            st.tenants.entry(tenant_name).or_default().deadline_exceeded += 1;
            st.metrics.counter_add("serve.deadline_exceeded", 1);
        }
    }
    st.results.insert(job.id, outcome);
    st.inflight -= 1;
    drop(st);
    shared.done.notify_all();
    shared.work.notify_all();
}

fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ----------------------------------------------------------------------
// Job execution
// ----------------------------------------------------------------------

/// Run one job to a terminal outcome: the attempt/retry loop with
/// chaos-panic injection, deadline checks, seeded backoff, quarantine,
/// and the independent SDC judge. Panics escape to the worker boundary
/// with `job.attempts` already counting the panicked attempt.
fn run_job(shared: &Shared, job: &mut QueuedJob, ctx: &mut WorkerCtx) -> JobOutcome {
    let opts = &shared.opts;
    let job_seed = splitmix64(opts.seed ^ job.id);
    let backoff = opts.backoff.clone().with_seed(job_seed);
    let queue_ms = job.enqueued.elapsed().as_millis() as u64;
    let work_start = Instant::now();

    loop {
        if job.deadline_at.is_some_and(|at| Instant::now() >= at) {
            return JobOutcome::DeadlineExceeded {
                attempts: job.attempts,
                total_ms: job.enqueued.elapsed().as_millis() as u64,
            };
        }
        job.attempts += 1;
        if job.attempts <= job.spec.chaos.panic_attempts {
            panic!("chaos: injected worker panic on attempt {} of job {}", job.attempts, job.id);
        }

        match attempt(shared, job, ctx, job_seed) {
            Ok(mut result) => {
                result.attempts = job.attempts;
                result.queue_ms = queue_ms;
                result.solve_ms = work_start.elapsed().as_millis() as u64;
                return JobOutcome::Done(result);
            }
            Err(err) => {
                if err.terminal_deadline {
                    return JobOutcome::DeadlineExceeded {
                        attempts: job.attempts,
                        total_ms: job.enqueued.elapsed().as_millis() as u64,
                    };
                }
                if job.attempts >= opts.max_attempts {
                    return JobOutcome::Quarantined {
                        attempts: job.attempts,
                        last_error: err.message,
                    };
                }
                // Seeded backoff between attempts; sleeping past the
                // deadline is itself a deadline, not a blind sleep.
                let delay = Duration::from_millis(backoff.delay_ms(job.attempts - 1));
                if !delay.is_zero() {
                    if job.deadline_at.is_some_and(|at| Instant::now() + delay >= at) {
                        return JobOutcome::DeadlineExceeded {
                            attempts: job.attempts,
                            total_ms: job.enqueued.elapsed().as_millis() as u64,
                        };
                    }
                    std::thread::sleep(delay);
                }
            }
        }
    }
}

/// One attempt's failure: a message plus whether it is a terminal
/// deadline (never retried).
struct AttemptError {
    message: String,
    terminal_deadline: bool,
}

/// Execute one solve attempt. Jobs carrying faults or a deadline run
/// through `runner::solve` directly (fault plans and mid-run aborts are
/// per-job state a shared prepared plan cannot hold); plain jobs
/// coalesce onto the worker's prepared-plan cache.
fn attempt(
    shared: &Shared,
    job: &QueuedJob,
    ctx: &mut WorkerCtx,
    job_seed: u64,
) -> Result<JobResult, AttemptError> {
    let spec = &job.spec;
    let storm_faults = match (&spec.faults, &shared.opts.storm) {
        (Some(f), _) => Some(f.clone()),
        (None, Some(storm)) => Some(storm.plan_for(job_seed).map_err(|e| AttemptError {
            message: format!("storm spec failed to derive a plan: {e}"),
            terminal_deadline: false,
        })?),
        (None, None) => None,
    };

    let (x, residual, iterations, report) = if storm_faults.is_some() || job.deadline_at.is_some() {
        let mut run_opts = shared.opts.base.clone();
        run_opts.backend = Some(shared.opts.backend);
        run_opts.record_history = false;
        run_opts.faults = storm_faults;
        // The runner measures its deadline from solve() entry: pass the
        // *remaining* budget, so queue time already spent counts.
        run_opts.deadline = match job.deadline_at {
            Some(at) => Some(at.saturating_duration_since(Instant::now())),
            None => None,
        };
        let rc = worker_matrix(ctx, spec);
        match runner::solve(rc, &spec.b, &spec.config, &run_opts) {
            Ok(res) => (res.x, res.residual, res.iterations, res.report),
            Err(e) => {
                return Err(AttemptError {
                    terminal_deadline: is_deadline(&e),
                    message: e.to_string(),
                })
            }
        }
    } else {
        // Plan-coalescing path: one prepare per (worker, matrix, solver).
        let key = (Arc::as_ptr(&spec.a) as *const () as usize, spec.config.to_value().to_string());
        if ctx.plans.len() >= PLAN_CACHE_CAP {
            ctx.plans.clear();
            ctx.mats.clear();
        }
        let hit = ctx.plans.contains_key(&key);
        {
            let mut st = lock(&shared.state);
            st.metrics.counter_add(if hit { "serve.plan_hits" } else { "serve.plan_misses" }, 1);
        }
        if !hit {
            let rc = worker_matrix(ctx, spec);
            let plan = SolvePlan { a: rc, solver: spec.config.to_value(), record_history: false };
            let prepared = ctx
                .handle
                .prepare(&plan)
                .map_err(|e| AttemptError { message: e.to_string(), terminal_deadline: false })?;
            ctx.plans.insert(key.clone(), prepared);
        }
        let prepared = ctx.plans.get_mut(&key).expect("plan just inserted");
        match prepared.execute(&spec.b, None) {
            Ok(run) => (run.x, run.residual, run.iterations, run.report),
            Err(e) => {
                // A failed plan may hold poisoned state: drop it so the
                // retry re-prepares from scratch.
                ctx.plans.remove(&key);
                return Err(AttemptError { message: e.to_string(), terminal_deadline: false });
            }
        }
    };

    // Independent SDC judge: recompute ‖b−Ax‖/‖b‖ host-side in f64 and
    // hold the result to its own *claim*. Two ways a wrong answer can
    // sneak past the runner into a `Done`:
    //
    // * the run claims convergence (claimed residual inside the runner's
    //   acceptance band) but the recomputed residual is outside it — the
    //   runner's own judge was bypassed or fed a corrupted residual;
    // * the run reports an honest residual (e.g. an `Accept(MaxIters)`
    //   under the default non-retrying policy — a tolerance miss the
    //   runner truthfully surfaces) but the returned `x` does not
    //   reproduce it — readback corruption or a cross-contaminated
    //   cached plan serving another job's solution.
    //
    // A disagreement in either direction is an escape — reported, never
    // swallowed.
    let true_res = true_residual(&spec.a, &x, &spec.b);
    let sdc_escape = match target_tolerance(&spec.config) {
        Some(tol) if residual <= tol * TOLERANCE_SAFETY => !(true_res <= tol * TOLERANCE_SAFETY),
        _ => !(true_res <= residual * RESIDUAL_AGREEMENT + RESIDUAL_SLACK),
    };

    Ok(JobResult {
        x_digest: x_digest(&x),
        x,
        residual,
        iterations,
        attempts: 0, // filled by run_job
        queue_ms: 0, // filled by run_job
        solve_ms: 0, // filled by run_job
        sdc_escape,
        report,
    })
}

/// The worker's `Rc` copy of a job's matrix (one deep copy per distinct
/// matrix per worker, then shared by every job and plan using it).
fn worker_matrix(ctx: &mut WorkerCtx, spec: &JobSpec) -> Rc<CsrMatrix> {
    let key = Arc::as_ptr(&spec.a) as *const () as usize;
    Rc::clone(ctx.mats.entry(key).or_insert_with(|| Rc::new((*spec.a).clone())))
}

/// How far the independent recompute may drift from the run's claimed
/// residual before the claim is judged corrupt. The runner recomputes
/// its residual host-side in f64 over the same `(A, x, b)`, so healthy
/// runs agree to rounding; a factor of 8 plus an absolute floor absorbs
/// summation-order noise without masking a genuinely wrong `x`.
const RESIDUAL_AGREEMENT: f64 = 8.0;
const RESIDUAL_SLACK: f64 = 1e-12;

/// ‖b − A x‖₂ / ‖b‖₂ in plain f64 on the host.
fn true_residual(a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
    let ax = a.spmv_alloc(x);
    let mut rr = 0.0;
    let mut bb = 0.0;
    for i in 0..b.len() {
        let r = b[i] - ax[i];
        rr += r * r;
        bb += b[i] * b[i];
    }
    if bb == 0.0 {
        rr.sqrt()
    } else {
        (rr / bb).sqrt()
    }
}

// ----------------------------------------------------------------------
// Stats
// ----------------------------------------------------------------------

/// Per-tenant terminal accounting.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TenantCounts {
    pub submitted: u64,
    pub done: u64,
    pub rejected: u64,
    pub quarantined: u64,
    pub deadline_exceeded: u64,
}

/// Final service statistics, returned by [`ServeEngine::finish`].
#[derive(Clone, Debug)]
pub struct ServeStats {
    pub submitted: u64,
    pub accepted: u64,
    pub rejected: u64,
    pub done: u64,
    pub quarantined: u64,
    pub deadline_exceeded: u64,
    /// Attempts beyond the first, across all jobs (includes attempts
    /// lost to worker panics).
    pub retries: u64,
    /// Done jobs whose independent residual check failed — must be 0
    /// for the chaos gate to pass.
    pub sdc_escapes: u64,
    /// Panics caught at a worker boundary (each respawned a worker).
    pub worker_losses: u64,
    pub wall_seconds: f64,
    /// Sustained throughput: Done jobs per wall-clock second.
    pub solves_per_sec: f64,
    /// Exact admission→done latency percentiles over completed jobs, ms.
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub tenants: BTreeMap<String, TenantCounts>,
    pub metrics: Metrics,
}

impl ServeStats {
    /// The no-lost-jobs ledger: every submission is accounted for in
    /// exactly one terminal class.
    pub fn accounting_ok(&self) -> bool {
        self.submitted == self.accepted + self.rejected
            && self.accepted == self.done + self.quarantined + self.deadline_exceeded
    }

    pub fn to_value(&self) -> Json {
        Json::obj([
            ("submitted", Json::from(self.submitted)),
            ("accepted", Json::from(self.accepted)),
            ("rejected", Json::from(self.rejected)),
            ("done", Json::from(self.done)),
            ("quarantined", Json::from(self.quarantined)),
            ("deadline_exceeded", Json::from(self.deadline_exceeded)),
            ("retries", Json::from(self.retries)),
            ("sdc_escapes", Json::from(self.sdc_escapes)),
            ("worker_losses", Json::from(self.worker_losses)),
            ("accounting_ok", Json::from(self.accounting_ok())),
            ("wall_seconds", Json::from(self.wall_seconds)),
            ("solves_per_sec", Json::from(self.solves_per_sec)),
            ("p50_ms", Json::from(self.p50_ms)),
            ("p99_ms", Json::from(self.p99_ms)),
            (
                "tenants",
                Json::Obj(
                    self.tenants
                        .iter()
                        .map(|(name, t)| {
                            (
                                name.clone(),
                                Json::obj([
                                    ("submitted", Json::from(t.submitted)),
                                    ("done", Json::from(t.done)),
                                    ("rejected", Json::from(t.rejected)),
                                    ("quarantined", Json::from(t.quarantined)),
                                    ("deadline_exceeded", Json::from(t.deadline_exceeded)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            ("metrics", self.metrics.to_value()),
        ])
    }
}
