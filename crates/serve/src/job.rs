//! Job specifications and terminal outcomes.
//!
//! The accounting contract lives in the types: a job that enters the
//! engine terminates in exactly one [`JobOutcome`] (or was rejected at
//! admission and never entered). Outcomes carry a [`digest`]
//! (`JobOutcome::digest`) so the chaos bench can compare two same-seed
//! runs bit-for-bit without storing full solution vectors.

use std::sync::Arc;
use std::time::Duration;

use graphene_core::config::SolverConfig;
use graphene_core::resilience::SolveError;
use ipu_sim::fault::FaultPlan;
use json::Json;
use profile::SolveReport;
use sparse::fingerprint::{fold64, fold_bytes};
use sparse::formats::CsrMatrix;

/// Test-only chaos directives a job can carry: the hooks the chaos-storm
/// suite uses to exercise worker-crash containment deterministically.
/// Inert by default.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Chaos {
    /// Panic inside the worker for the first N attempts of this job
    /// (0: never). `N < max_attempts` exercises crash-then-recover;
    /// `N ≥ max_attempts` produces a poison job that quarantines.
    pub panic_attempts: u32,
}

/// One solve request, as submitted by a tenant.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Tenant identity — the fairness and queue-capacity domain.
    pub tenant: String,
    /// System matrix. `Arc` so many queued jobs share one structure;
    /// workers coalesce jobs with the same matrix identity onto one
    /// prepared plan.
    pub a: Arc<CsrMatrix>,
    /// Right-hand side (must match `a.nrows`).
    pub b: Vec<f64>,
    /// Solver hierarchy to run.
    pub config: SolverConfig,
    /// Wall-clock budget from *admission* (queue wait counts). `None`
    /// falls back to `ServeOptions::default_deadline`.
    pub deadline: Option<Duration>,
    /// Explicit per-job fault plan (overrides the engine storm).
    pub faults: Option<FaultPlan>,
    /// Deterministic failure-injection directives (tests only).
    pub chaos: Chaos,
}

impl JobSpec {
    /// A plain job: no deadline, no faults, no chaos.
    pub fn new(tenant: &str, a: Arc<CsrMatrix>, b: Vec<f64>, config: SolverConfig) -> JobSpec {
        JobSpec {
            tenant: tenant.into(),
            a,
            b,
            config,
            deadline: None,
            faults: None,
            chaos: Chaos::default(),
        }
    }
}

/// What a completed (Done) job produced.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Solution vector.
    pub x: Vec<f64>,
    /// FNV-1a digest of the solution bits — the determinism witness.
    pub x_digest: u64,
    /// The solver's reported true relative residual.
    pub residual: f64,
    /// Inner iterations of the final (successful) attempt.
    pub iterations: usize,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Time spent queued before the first attempt started, ms.
    pub queue_ms: u64,
    /// Time spent inside solve attempts (incl. retries/backoff), ms.
    pub solve_ms: u64,
    /// The engine's *independent* host-side f64 residual check
    /// disagreed with the solver's verdict: the solution claims
    /// convergence but ‖b−Ax‖/‖b‖ is outside the acceptance band. This
    /// is a silent-data-corruption escape — surfaced, never swallowed.
    pub sdc_escape: bool,
    /// Full per-solve report (schema v3) from the final attempt.
    pub report: SolveReport,
}

/// The exactly-one terminal state of an admitted job.
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// Solved (possibly after retries). Check `sdc_escape` before
    /// trusting the bits under fault injection.
    Done(JobResult),
    /// Failed `attempts` times and was quarantined so it cannot wedge a
    /// worker or starve its tenant.
    Quarantined { attempts: u32, last_error: String },
    /// Its wall-clock budget expired — queued, mid-solve, or between
    /// retries.
    DeadlineExceeded { attempts: u32, total_ms: u64 },
}

impl JobOutcome {
    /// Short class tag (`done` / `quarantined` / `deadline`).
    pub fn class(&self) -> &'static str {
        match self {
            JobOutcome::Done(_) => "done",
            JobOutcome::Quarantined { .. } => "quarantined",
            JobOutcome::DeadlineExceeded { .. } => "deadline",
        }
    }

    /// Determinism digest: class tag folded with the solution bits (0
    /// for non-Done outcomes). Two same-seed runs must produce equal
    /// digests job-for-job; timing fields are deliberately excluded.
    pub fn digest(&self) -> u64 {
        let class = fold_bytes(0xcbf29ce484222325, self.class().as_bytes());
        match self {
            JobOutcome::Done(r) => fold64(class, r.x_digest),
            JobOutcome::Quarantined { attempts, .. } => fold64(class, *attempts as u64),
            JobOutcome::DeadlineExceeded { .. } => class,
        }
    }

    /// Compact JSON for per-job artifacts (timing included — use
    /// [`digest`](Self::digest) for determinism comparisons, not this).
    pub fn to_value(&self) -> Json {
        match self {
            JobOutcome::Done(r) => Json::obj([
                ("class", Json::from("done")),
                ("x_digest", Json::from(format!("{:016x}", r.x_digest))),
                ("residual", Json::from(r.residual)),
                ("iterations", Json::from(r.iterations as u64)),
                ("attempts", Json::from(r.attempts as u64)),
                ("queue_ms", Json::from(r.queue_ms)),
                ("solve_ms", Json::from(r.solve_ms)),
                ("sdc_escape", Json::from(r.sdc_escape)),
            ]),
            JobOutcome::Quarantined { attempts, last_error } => Json::obj([
                ("class", Json::from("quarantined")),
                ("attempts", Json::from(*attempts as u64)),
                ("last_error", Json::from(last_error.as_str())),
            ]),
            JobOutcome::DeadlineExceeded { attempts, total_ms } => Json::obj([
                ("class", Json::from("deadline")),
                ("attempts", Json::from(*attempts as u64)),
                ("total_ms", Json::from(*total_ms)),
            ]),
        }
    }
}

/// Digest of a solution vector's bit pattern (FNV-1a over the f64 LE
/// bytes): equal iff the solutions are bit-identical.
pub fn x_digest(x: &[f64]) -> u64 {
    let mut d = 0xcbf29ce484222325;
    for v in x {
        d = fold_bytes(d, &v.to_le_bytes());
    }
    d
}

/// Is this solve error a terminal deadline (no retry) as opposed to a
/// retryable failure?
pub fn is_deadline(err: &SolveError) -> bool {
    matches!(err, SolveError::DeadlineExceeded { .. })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_separate_classes_and_bits() {
        let done = |bits: &[f64]| {
            JobOutcome::Done(JobResult {
                x: bits.to_vec(),
                x_digest: x_digest(bits),
                residual: 1e-9,
                iterations: 3,
                attempts: 1,
                queue_ms: 0,
                solve_ms: 1,
                sdc_escape: false,
                report: SolveReport::new("test"),
            })
        };
        assert_eq!(done(&[1.0, 2.0]).digest(), done(&[1.0, 2.0]).digest());
        assert_ne!(done(&[1.0, 2.0]).digest(), done(&[1.0, 2.5]).digest());
        let q = JobOutcome::Quarantined { attempts: 3, last_error: "x".into() };
        let d = JobOutcome::DeadlineExceeded { attempts: 1, total_ms: 5 };
        assert_ne!(q.digest(), d.digest());
        assert_ne!(q.digest(), done(&[1.0, 2.0]).digest());
        // -0.0 and 0.0 are different bit patterns: the digest sees bits,
        // not values.
        assert_ne!(x_digest(&[0.0]), x_digest(&[-0.0]));
    }

    #[test]
    fn outcome_json_carries_the_class() {
        let q = JobOutcome::Quarantined { attempts: 3, last_error: "diverged".into() };
        let v = q.to_value();
        assert_eq!(v.get("class").and_then(Json::as_str), Some("quarantined"));
        assert_eq!(v.get("attempts").and_then(Json::as_u64), Some(3));
    }
}
