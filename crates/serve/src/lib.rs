//! # graphene-serve — the multi-tenant batch solve service
//!
//! ROADMAP item 3 ("solver-as-a-service"): the layer that turns
//! single-shot `runner::solve` calls into a *fleet* — a job queue that
//! accepts solve requests (matrix + solver config + tenant + deadline),
//! coalesces same-structure jobs onto shared prepared plans, and
//! schedules them across a pool of worker threads, with **robustness as
//! the headline contract**:
//!
//! * **Bounded per-tenant queues, deficit-round-robin fairness** —
//!   admission is reject-not-block ([`ServeError::QueueFull`] at the
//!   boundary, never a blocked caller or a silent drop), and one
//!   flooding tenant cannot starve another (see [`queue`]).
//! * **Per-job wall-clock deadlines** — enforced *mid-run* through
//!   `SolveOptions::deadline` and the resilience Sentinel's
//!   host-callback abort; an expired job terminates as
//!   [`JobOutcome::DeadlineExceeded`], whether it expired queued,
//!   mid-solve, or during a retry backoff sleep.
//! * **Seeded retry backoff + poison-job quarantine** — failed attempts
//!   retry under the jittered exponential [`Backoff`] schedule
//!   (per-job splitmix64 seed: replays are bit-identical), and a job
//!   that keeps failing is quarantined after
//!   [`ServeOptions::max_attempts`] so one pathological matrix cannot
//!   wedge a worker or starve its tenant.
//! * **Worker-crash containment** — a panicking job is caught at the
//!   worker boundary, counted as a [`ServeError::WorkerLost`] event,
//!   its worker *respawned*, and the in-flight job requeued (or
//!   quarantined when its attempt budget is spent).
//! * **Chaos-storm survival** — a [`StormSpec`] (or `GRAPHENE_FAULTS`
//!   reaching the runner underneath) injects deterministic per-job
//!   fault plans derived from `splitmix64(seed ^ job_id)`; every
//!   completed job is re-judged by an *independent* host-side f64
//!   residual check, so an SDC escape is counted, never silent.
//!
//! **Accounting invariant** (checked by `ServeStats::accounting_ok` and
//! hard-gated in CI): every submitted job terminates in exactly one of
//! *done / rejected / quarantined / deadline-exceeded* — no lost jobs,
//! under any interleaving of retries, worker crashes and shutdown.
//!
//! Threading contract: `Backend` handles hold `Rc` state and are not
//! `Send`, so each worker thread leases its own handle from a
//! [`backend::pool::BackendPool`] (validated against the fleet's
//! capability requirements at engine start) and keeps thread-local
//! caches of `Rc` matrices and prepared plans keyed by matrix identity
//! — the "coalesce same-fingerprint jobs onto shared tuned plans"
//! story, amortising one deep clone + prepare per (worker, structure).

use std::fmt;
use std::time::Duration;

pub mod engine;
pub mod job;
pub mod queue;

pub use engine::{ServeEngine, ServeStats, TenantCounts};
pub use job::{Chaos, JobOutcome, JobResult, JobSpec};
pub use queue::{QueuedJob, TenantQueues};

use graphene_core::resilience::Backoff;
use graphene_core::runner::SolveOptions;
use ipu_sim::fault::FaultPlan;

/// Job identifier: assigned densely in submission order, starting at 1.
pub type JobId = u64;

// ----------------------------------------------------------------------
// Errors
// ----------------------------------------------------------------------

/// Typed serving failure. Load shedding and capability mismatches are
/// structured refusals at the admission boundary — never a panic, a
/// block, or a silent drop.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// The tenant's bounded queue is at capacity: the job is *rejected*
    /// at admission (reject-not-block). Resubmit later or shed load.
    QueueFull { tenant: String, capacity: usize },
    /// The job or engine configuration cannot be served: dimension
    /// mismatch, a capability the pooled backend lacks (e.g. fault
    /// injection on `cpu`), a malformed storm spec, or submission after
    /// shutdown.
    Rejected { reason: String },
    /// A job panicked inside a worker; the worker was torn down and
    /// respawned. Reported as an *event* in [`ServeStats`] — the job
    /// itself is requeued or quarantined, never lost.
    WorkerLost { worker: usize },
    /// A drain/wait did not complete within its timeout (the CI
    /// deadlock gate turns this into a hard failure).
    Timeout { waited_ms: u64 },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { tenant, capacity } => {
                write!(f, "queue full for tenant `{tenant}` (capacity {capacity}): job rejected")
            }
            ServeError::Rejected { reason } => write!(f, "job rejected: {reason}"),
            ServeError::WorkerLost { worker } => {
                write!(f, "worker {worker} lost to a panicking job (respawned)")
            }
            ServeError::Timeout { waited_ms } => {
                write!(f, "serve operation timed out after {waited_ms} ms")
            }
        }
    }
}

impl std::error::Error for ServeError {}

// ----------------------------------------------------------------------
// Chaos storms
// ----------------------------------------------------------------------

/// A fleet-wide chaos-storm template: every job without an explicit
/// per-job fault plan gets a seeded plan derived from
/// `splitmix64(engine seed ^ job id)` — a pure function of the seed and
/// the submission order, so two runs with the same seed inject the
/// exact same faults into the exact same jobs regardless of worker
/// interleaving.
#[derive(Clone, Debug, PartialEq)]
pub struct StormSpec {
    /// Faults per job.
    pub n: u32,
    /// `+`-separated fault classes (the `GRAPHENE_FAULTS` grammar):
    /// `flip`, `xflip`, `xdrop`, `stall`.
    pub classes: String,
    /// Superstep draw range `[1, smax)`.
    pub smax: u64,
    /// Word-index draw range `[0, wmax)`.
    pub wmax: u32,
}

impl StormSpec {
    /// The default storm: one fault per job drawn from all classes,
    /// early enough in the run (`smax`) to land inside small solves.
    pub fn storm() -> StormSpec {
        StormSpec { n: 1, classes: "flip+xflip+xdrop+stall".into(), smax: 256, wmax: 16 }
    }

    /// The seeded per-job fault plan this template derives.
    pub fn plan_for(&self, seed: u64) -> Result<FaultPlan, String> {
        FaultPlan::parse(&format!(
            "seed={seed};n={};classes={};smax={};wmax={}",
            self.n, self.classes, self.smax, self.wmax
        ))
    }
}

// ----------------------------------------------------------------------
// Options
// ----------------------------------------------------------------------

/// Engine configuration. `Default` is a small two-worker fleet on the
/// default backend with inert backoff and no storm.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Worker threads (each owns a leased backend handle). Must be ≥ 1.
    pub workers: usize,
    /// Per-tenant bounded-queue capacity (fresh admissions; retries of
    /// already-admitted jobs are exempt — their liability was counted
    /// at admission). Must be ≥ 1.
    pub queue_capacity: usize,
    /// Deficit-round-robin quantum, in job-cost units (see
    /// [`queue::job_cost`]). Larger quanta favour throughput over
    /// interleaving; fairness holds for any value ≥ 1.
    pub quantum: u64,
    /// Attempts (including the first) before a failing job is
    /// quarantined. Must be ≥ 1.
    pub max_attempts: u32,
    /// Retry delay schedule between attempts of one job. The per-job
    /// jitter stream is re-seeded from `splitmix64(seed ^ job_id)`, so
    /// replays under a fixed engine seed sleep identical schedules.
    pub backoff: Backoff,
    /// Engine seed: storms and backoff jitter derive from it.
    pub seed: u64,
    /// Fleet-wide chaos storm (None: no injected faults). Requires the
    /// backend's `fault_injection` capability — checked at engine
    /// start, refused typed.
    pub storm: Option<StormSpec>,
    /// The backend family every worker leases from.
    pub backend: backend::BackendSpec,
    /// Machine/partition options for the solves (its `backend`,
    /// `record_history`, `faults` and `deadline` fields are managed per
    /// job by the engine).
    pub base: SolveOptions,
    /// Deadline applied to jobs that don't carry their own.
    pub default_deadline: Option<Duration>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            workers: 2,
            queue_capacity: 64,
            quantum: 4,
            max_attempts: 3,
            backoff: Backoff::default(),
            seed: 0,
            storm: None,
            backend: backend::BackendSpec::IpuSim(backend::IpuVariant::Auto),
            base: SolveOptions::default(),
            default_deadline: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_spec_derives_parseable_seeded_plans() {
        let storm = StormSpec::storm();
        let p1 = storm.plan_for(1).expect("default storm must parse");
        let p2 = storm.plan_for(1).unwrap();
        let p3 = storm.plan_for(2).unwrap();
        // Same seed: identical resolved faults; different seed: a
        // different draw (pure function of the seed).
        assert_eq!(p1.resolve(4), p2.resolve(4));
        assert_ne!(p1.resolve(4), p3.resolve(4));
        assert!(StormSpec { classes: "warp".into(), ..StormSpec::storm() }.plan_for(1).is_err());
    }

    #[test]
    fn serve_errors_display_their_contract() {
        let e = ServeError::QueueFull { tenant: "alice".into(), capacity: 4 };
        assert!(e.to_string().contains("alice"));
        assert!(e.to_string().contains("rejected"));
        assert!(ServeError::WorkerLost { worker: 3 }.to_string().contains("respawned"));
    }
}
