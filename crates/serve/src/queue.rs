//! Bounded per-tenant queues with deficit-round-robin scheduling.
//!
//! Admission control and fairness are *pure data-structure* concerns —
//! no threads, no clocks — so the whole robustness surface here is
//! property-testable (see `tests/properties.rs`):
//!
//! * **Bounded**: each tenant's fresh-admission queue never exceeds
//!   `capacity`; [`TenantQueues::admit`] rejects with
//!   [`ServeError::QueueFull`] exactly when the lane is full
//!   (reject-not-block, never a silent drop). Retries of
//!   already-admitted jobs requeue into a separate retry lane exempt
//!   from the cap — their liability was counted at admission, and
//!   bouncing a retry would *lose* the job, violating accounting.
//! * **Fair**: deficit round-robin over tenants in ring order. Each
//!   visit, a tenant with pending work earns `quantum` deficit and is
//!   served when its accumulated deficit covers the head job's cost
//!   (`job_cost`, capped at [`MAX_COST`]); an idle tenant's deficit
//!   resets so it cannot hoard credit. Hence a tenant with pending work
//!   is served at least once per `ceil(MAX_COST / quantum)` full ring
//!   passes, no matter what the other tenants submit — the starvation
//!   bound the property tests enforce.
//!
//! Within one tenant, the retry lane is served before the fresh lane
//! (an in-flight job finishes before new liability starts), and each
//! lane is FIFO.

use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;

use crate::{JobId, JobSpec, ServeError};

/// Cost normalisation: one cost unit per this many nonzeros.
pub const COST_NNZ: usize = 4096;
/// Cost ceiling — bounds how long a big job can defer the ring, and
/// therefore the DRR starvation bound.
pub const MAX_COST: u64 = 8;

/// DRR cost of a job with `nnz` nonzeros: 1 + nnz/[`COST_NNZ`], capped
/// at [`MAX_COST`]. Always ≥ 1 so deficits are consumed.
pub fn job_cost(nnz: usize) -> u64 {
    (1 + (nnz / COST_NNZ) as u64).min(MAX_COST)
}

/// A job sitting in (or travelling through) the queues.
#[derive(Clone, Debug)]
pub struct QueuedJob {
    pub id: JobId,
    pub spec: JobSpec,
    /// Attempts already consumed (0 for a fresh job).
    pub attempts: u32,
    /// Admission time — queue-latency metrics and queued-expiry checks.
    pub enqueued: Instant,
    /// Absolute wall-clock deadline, resolved at admission.
    pub deadline_at: Option<Instant>,
    /// DRR cost (public so property tests can fabricate adversarial
    /// costs directly; the engine always sets `job_cost(nnz)`).
    pub cost: u64,
}

#[derive(Debug, Default)]
struct TenantLane {
    fresh: VecDeque<QueuedJob>,
    retry: VecDeque<QueuedJob>,
    deficit: u64,
}

impl TenantLane {
    fn has_work(&self) -> bool {
        !self.fresh.is_empty() || !self.retry.is_empty()
    }

    fn head_cost(&self) -> Option<u64> {
        self.retry.front().or_else(|| self.fresh.front()).map(|j| j.cost.clamp(1, MAX_COST))
    }

    fn pop(&mut self) -> Option<QueuedJob> {
        self.retry.pop_front().or_else(|| self.fresh.pop_front())
    }
}

/// The per-tenant bounded queues plus the DRR scheduler state.
#[derive(Debug)]
pub struct TenantQueues {
    capacity: usize,
    quantum: u64,
    /// Tenant name → lane. `BTreeMap` so ring order is deterministic
    /// (lexicographic by tenant), independent of submission order.
    lanes: BTreeMap<String, TenantLane>,
    /// Ring position: index into the sorted tenant list where the next
    /// `pick` starts.
    cursor: usize,
}

impl TenantQueues {
    pub fn new(capacity: usize, quantum: u64) -> TenantQueues {
        TenantQueues {
            capacity: capacity.max(1),
            quantum: quantum.max(1),
            lanes: BTreeMap::new(),
            cursor: 0,
        }
    }

    /// Jobs currently queued (both lanes, all tenants).
    pub fn len(&self) -> usize {
        self.lanes.values().map(|l| l.fresh.len() + l.retry.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.lanes.values().all(|l| !l.has_work())
    }

    /// Fresh-lane depth for one tenant (the bounded quantity).
    pub fn depth(&self, tenant: &str) -> usize {
        self.lanes.get(tenant).map_or(0, |l| l.fresh.len())
    }

    /// Admit a fresh job, or reject it when the tenant's bounded lane is
    /// at capacity. Never blocks, never drops silently.
    pub fn admit(&mut self, job: QueuedJob) -> Result<(), ServeError> {
        let tenant = job.spec.tenant.clone();
        let lane = self.lanes.entry(tenant.clone()).or_default();
        if lane.fresh.len() >= self.capacity {
            return Err(ServeError::QueueFull { tenant, capacity: self.capacity });
        }
        lane.fresh.push_back(job);
        Ok(())
    }

    /// Requeue an already-admitted job for retry (cap-exempt — see the
    /// module docs).
    pub fn requeue(&mut self, job: QueuedJob) {
        self.lanes.entry(job.spec.tenant.clone()).or_default().retry.push_back(job);
    }

    /// Take the next job under deficit round-robin, or `None` when every
    /// lane is empty. O(tenants × ceil(MAX_COST/quantum)) worst case.
    pub fn pick(&mut self) -> Option<QueuedJob> {
        if self.is_empty() {
            return None;
        }
        let tenants: Vec<String> = self.lanes.keys().cloned().collect();
        let n = tenants.len();
        // Enough full ring passes that any working tenant's deficit
        // reaches MAX_COST; +1 covers a cursor mid-ring start.
        let rounds = (MAX_COST / self.quantum + 2) as usize;
        for _ in 0..rounds * n {
            let idx = self.cursor % n;
            self.cursor = (self.cursor + 1) % n;
            let lane = self.lanes.get_mut(&tenants[idx]).expect("ring tenant exists");
            let Some(cost) = lane.head_cost() else {
                // Idle tenants forfeit their credit: deficits only
                // accumulate while work is actually waiting.
                lane.deficit = 0;
                continue;
            };
            lane.deficit += self.quantum;
            if lane.deficit >= cost {
                lane.deficit -= cost;
                return lane.pop();
            }
        }
        unreachable!("a non-empty ring yields within ceil(MAX_COST/quantum)+2 passes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_core::config::SolverConfig;
    use sparse::formats::CsrMatrix;
    use std::sync::Arc;

    fn qjob(tenant: &str, id: JobId, cost: u64) -> QueuedJob {
        let a = Arc::new(CsrMatrix::identity(2));
        QueuedJob {
            id,
            spec: JobSpec::new(tenant, a.clone(), vec![1.0, 1.0], SolverConfig::Identity),
            attempts: 0,
            enqueued: Instant::now(),
            deadline_at: None,
            cost,
        }
    }

    #[test]
    fn cost_is_clamped_and_positive() {
        assert_eq!(job_cost(0), 1);
        assert_eq!(job_cost(COST_NNZ), 2);
        assert_eq!(job_cost(COST_NNZ * 100), MAX_COST);
    }

    #[test]
    fn admission_rejects_at_capacity_per_tenant() {
        let mut q = TenantQueues::new(2, 1);
        assert!(q.admit(qjob("a", 1, 1)).is_ok());
        assert!(q.admit(qjob("a", 2, 1)).is_ok());
        let err = q.admit(qjob("a", 3, 1)).unwrap_err();
        assert_eq!(err, ServeError::QueueFull { tenant: "a".into(), capacity: 2 });
        // A different tenant has its own budget.
        assert!(q.admit(qjob("b", 4, 1)).is_ok());
        assert_eq!(q.depth("a"), 2);
        assert_eq!(q.depth("b"), 1);
    }

    #[test]
    fn requeue_is_cap_exempt_and_served_first() {
        let mut q = TenantQueues::new(1, 4);
        q.admit(qjob("a", 1, 1)).unwrap();
        // Lane full; a retry of job 9 still lands.
        q.requeue(qjob("a", 9, 1));
        assert_eq!(q.pick().unwrap().id, 9, "retry lane precedes fresh lane");
        assert_eq!(q.pick().unwrap().id, 1);
        assert!(q.pick().is_none());
    }

    #[test]
    fn drr_interleaves_unequal_tenants() {
        // Tenant `a` floods 12 cheap jobs; `b` has 3. With quantum 1 and
        // unit costs, service alternates — b finishes within the first
        // six picks despite a's flood.
        let mut q = TenantQueues::new(16, 1);
        for i in 0..12 {
            q.admit(qjob("a", 100 + i, 1)).unwrap();
        }
        for i in 0..3 {
            q.admit(qjob("b", 200 + i, 1)).unwrap();
        }
        let order: Vec<JobId> = std::iter::from_fn(|| q.pick()).map(|j| j.id).collect();
        assert_eq!(order.len(), 15);
        let last_b = order.iter().rposition(|id| *id >= 200).unwrap();
        assert!(last_b <= 5, "b starved: finished at pick {last_b} in {order:?}");
    }

    #[test]
    fn expensive_jobs_wait_for_deficit() {
        // `a` has one MAX_COST job, `b` a stream of unit jobs; with
        // quantum 1, b is served while a's deficit accrues, then a runs.
        let mut q = TenantQueues::new(32, 1);
        q.admit(qjob("a", 1, MAX_COST)).unwrap();
        for i in 0..20 {
            q.admit(qjob("b", 10 + i, 1)).unwrap();
        }
        let order: Vec<JobId> = std::iter::from_fn(|| q.pick()).map(|j| j.id).collect();
        let pos_a = order.iter().position(|id| *id == 1).unwrap();
        assert!(pos_a >= 4, "MAX_COST job ran before earning deficit: {order:?}");
        assert!(pos_a < MAX_COST as usize + 2, "expensive job starved: {order:?}");
    }
}
