//! Integration tests for the serve engine: the robustness contract
//! end-to-end — mixed workloads complete with clean accounting,
//! deadlines terminate jobs in every phase, panicking jobs are contained
//! and their workers respawned, poison jobs quarantine, and admission
//! sheds load instead of blocking.

use std::sync::Arc;
use std::time::Duration;

use graphene_core::config::SolverConfig;
use graphene_core::resilience::Backoff;
use serve::{Chaos, JobOutcome, JobSpec, ServeEngine, ServeError, ServeOptions, StormSpec};
use sparse::gen::{poisson_2d_5pt, tridiagonal};

const DRAIN: Duration = Duration::from_secs(120);

fn cg(max_iters: u32) -> SolverConfig {
    SolverConfig::Cg { max_iters, rel_tol: 1e-8, precond: None }
}

fn spd_spec(tenant: &str, n: usize) -> JobSpec {
    let a = Arc::new(tridiagonal(n));
    let b = vec![1.0; n];
    JobSpec::new(tenant, a, b, cg(200))
}

fn opts() -> ServeOptions {
    ServeOptions { workers: 2, ..ServeOptions::default() }
}

#[test]
fn mixed_workload_completes_with_clean_accounting() {
    let engine = ServeEngine::start(opts()).unwrap();
    let a_small = Arc::new(tridiagonal(24));
    let a_grid = Arc::new(poisson_2d_5pt(6, 6, 1.0));
    let mut ids = Vec::new();
    for i in 0..6 {
        let (tenant, a) = if i % 2 == 0 { ("alice", &a_small) } else { ("bob", &a_grid) };
        let n = a.nrows;
        ids.push(
            engine
                .submit(JobSpec::new(tenant, Arc::clone(a), vec![1.0; n], cg(300)))
                .expect("admission"),
        );
    }
    engine.drain(DRAIN).unwrap();
    for id in &ids {
        match engine.outcome(*id) {
            Some(JobOutcome::Done(r)) => {
                assert!(!r.sdc_escape, "healthy solve flagged as SDC escape");
                assert_eq!(r.attempts, 1);
                assert!(r.residual.is_finite());
            }
            other => panic!("job {id}: expected Done, got {other:?}"),
        }
    }
    let stats = engine.finish();
    assert!(stats.accounting_ok(), "{stats:?}");
    assert_eq!(stats.done, 6);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.sdc_escapes, 0);
    assert_eq!(stats.tenants["alice"].done, 3);
    assert_eq!(stats.tenants["bob"].done, 3);
    // Same matrix + solver repeatedly: the plan cache must have coalesced
    // (strictly fewer prepares than solves across the fleet).
    let hits = stats.metrics.counter("serve.plan_hits");
    let misses = stats.metrics.counter("serve.plan_misses");
    assert_eq!(hits + misses, 6);
    assert!(hits >= 1, "no plan coalescing: hits={hits} misses={misses}");
}

#[test]
fn zero_deadline_expires_in_queue() {
    let engine = ServeEngine::start(opts()).unwrap();
    let mut spec = spd_spec("t", 16);
    spec.deadline = Some(Duration::ZERO);
    let id = engine.submit(spec).unwrap();
    engine.drain(DRAIN).unwrap();
    match engine.outcome(id) {
        Some(JobOutcome::DeadlineExceeded { .. }) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    let stats = engine.finish();
    assert!(stats.accounting_ok());
    assert_eq!(stats.deadline_exceeded, 1);
}

#[test]
fn short_deadline_aborts_a_large_solve_mid_run() {
    // A 48x48 Poisson solve takes well over 2ms of host time in the
    // simulator; the Sentinel abort must cut it off and the job must
    // terminate as DeadlineExceeded, not hang.
    let engine = ServeEngine::start(opts()).unwrap();
    let a = Arc::new(poisson_2d_5pt(48, 48, 1.0));
    let n = a.nrows;
    let mut spec = JobSpec::new("t", a, vec![1.0; n], cg(4000));
    spec.deadline = Some(Duration::from_millis(2));
    let id = engine.submit(spec).unwrap();
    engine.drain(DRAIN).unwrap();
    match engine.outcome(id) {
        Some(JobOutcome::DeadlineExceeded { .. }) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert!(engine.finish().accounting_ok());
}

#[test]
fn panicking_job_is_contained_and_worker_respawned() {
    let engine = ServeEngine::start(opts()).unwrap();
    let mut chaotic = spd_spec("t", 16);
    chaotic.chaos = Chaos { panic_attempts: 1 };
    let id = engine.submit(chaotic).unwrap();
    // A healthy job after the crash: the respawned worker must serve it.
    let healthy = engine.submit(spd_spec("t", 16)).unwrap();
    engine.drain(DRAIN).unwrap();
    match engine.outcome(id) {
        Some(JobOutcome::Done(r)) => assert_eq!(r.attempts, 2, "panic attempt must count"),
        other => panic!("expected Done after one panic, got {other:?}"),
    }
    assert!(matches!(engine.outcome(healthy), Some(JobOutcome::Done(_))));
    let stats = engine.finish();
    assert!(stats.accounting_ok());
    assert_eq!(stats.worker_losses, 1);
    assert_eq!(stats.retries, 1);
}

#[test]
fn poison_job_quarantines_after_max_attempts() {
    let mut o = opts();
    o.max_attempts = 3;
    let engine = ServeEngine::start(o).unwrap();
    let mut poison = spd_spec("t", 16);
    poison.chaos = Chaos { panic_attempts: u32::MAX };
    let id = engine.submit(poison).unwrap();
    engine.drain(DRAIN).unwrap();
    match engine.outcome(id) {
        Some(JobOutcome::Quarantined { attempts, last_error }) => {
            assert_eq!(attempts, 3);
            assert!(last_error.contains("panic"), "{last_error}");
        }
        other => panic!("expected Quarantined, got {other:?}"),
    }
    let stats = engine.finish();
    assert!(stats.accounting_ok());
    assert_eq!(stats.quarantined, 1);
    assert_eq!(stats.worker_losses, 3, "every attempt cost a worker");
}

#[test]
fn admission_rejects_instead_of_blocking_when_full() {
    // One worker wedged on a long solve; a burst beyond capacity must be
    // rejected typed, and every accepted job still terminates.
    let mut o = opts();
    o.workers = 1;
    o.queue_capacity = 4;
    let engine = ServeEngine::start(o).unwrap();
    let slow = Arc::new(poisson_2d_5pt(32, 32, 1.0));
    let n = slow.nrows;
    engine.submit(JobSpec::new("t", slow, vec![1.0; n], cg(2000))).unwrap();
    let mut accepted = 1u64;
    let mut rejected = 0u64;
    for _ in 0..12 {
        match engine.submit(spd_spec("t", 8)) {
            Ok(_) => accepted += 1,
            Err(ServeError::QueueFull { tenant, capacity }) => {
                assert_eq!(tenant, "t");
                assert_eq!(capacity, 4);
                rejected += 1;
            }
            Err(e) => panic!("unexpected rejection type: {e}"),
        }
    }
    assert!(rejected >= 8, "burst of 12 into capacity 4 must shed load (rejected {rejected})");
    engine.drain(DRAIN).unwrap();
    let stats = engine.finish();
    assert!(stats.accounting_ok());
    assert_eq!(stats.accepted, accepted);
    assert_eq!(stats.rejected, rejected);
    assert_eq!(stats.done, accepted);
}

#[test]
fn dimension_mismatch_and_shutdown_are_typed_rejections() {
    let engine = ServeEngine::start(opts()).unwrap();
    let mut bad = spd_spec("t", 8);
    bad.b.pop();
    assert!(matches!(engine.submit(bad), Err(ServeError::Rejected { .. })));
    let stats = engine.finish();
    assert_eq!(stats.submitted, 0, "pre-admission rejects never enter the ledger");
    assert!(stats.accounting_ok());
}

#[test]
fn same_seed_storm_runs_are_bit_identical() {
    // The chaos-determinism contract: two engines with the same seed and
    // storm, fed the same jobs, produce identical per-job outcome
    // digests — regardless of worker interleaving.
    let run = || {
        let mut o = opts();
        o.seed = 42;
        o.storm = Some(StormSpec::storm());
        o.backoff = Backoff { base_ms: 1, max_ms: 4, jitter: 0.5, ..Backoff::default() };
        let engine = ServeEngine::start(o).unwrap();
        let mut ids = Vec::new();
        for i in 0..4 {
            let tenant = if i % 2 == 0 { "alice" } else { "bob" };
            ids.push(engine.submit(spd_spec(tenant, 20)).unwrap());
        }
        engine.drain(DRAIN).unwrap();
        let digests: Vec<u64> =
            ids.iter().map(|id| engine.outcome(*id).unwrap().digest()).collect();
        let stats = engine.finish();
        assert!(stats.accounting_ok());
        assert_eq!(stats.sdc_escapes, 0, "SDC escaped the independent judge");
        digests
    };
    assert_eq!(run(), run(), "same-seed chaos runs diverged");
}

#[test]
fn storm_requires_fault_injection_capability() {
    let mut o = opts();
    o.backend = backend::BackendSpec::Cpu { parallel: false };
    o.storm = Some(StormSpec::storm());
    match ServeEngine::start(o) {
        Err(ServeError::Rejected { reason }) => {
            assert!(reason.contains("fault_injection"), "{reason}");
        }
        other => panic!("cpu backend must refuse a storm, got {:?}", other.is_ok()),
    }
    // Without the storm the cpu backend serves fine.
    let mut o = opts();
    o.backend = backend::BackendSpec::Cpu { parallel: false };
    let engine = ServeEngine::start(o).unwrap();
    let id = engine.submit(spd_spec("t", 16)).unwrap();
    engine.drain(DRAIN).unwrap();
    assert!(matches!(engine.outcome(id), Some(JobOutcome::Done(_))));
    assert!(engine.finish().accounting_ok());
}
