//! Property tests for the admission/fairness layer (satellite of the
//! serving tentpole): the bounded-queue and deficit-round-robin
//! invariants hold for *adversarial* workload mixes, not just the
//! hand-picked cases in the unit tests.
//!
//! Everything here drives `serve::queue` directly — pure data
//! structure, no threads — so failures reproduce deterministically.

use std::sync::Arc;
use std::time::Instant;

use graphene_core::config::SolverConfig;
use proptest::prelude::*;
use serve::queue::{QueuedJob, TenantQueues, MAX_COST};
use serve::ServeError;
use sparse::formats::CsrMatrix;

fn qjob(tenant: usize, id: u64, cost: u64) -> QueuedJob {
    QueuedJob {
        id,
        spec: serve::JobSpec::new(
            &format!("tenant-{tenant}"),
            Arc::new(CsrMatrix::identity(2)),
            vec![1.0, 1.0],
            SolverConfig::Identity,
        ),
        attempts: 0,
        enqueued: Instant::now(),
        deadline_at: None,
        cost,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bounded queues: under any interleaving of admits and picks, no
    /// tenant's fresh lane ever exceeds capacity, and `admit` rejects
    /// exactly when the lane is full at that moment — reject-not-block.
    #[test]
    fn depth_never_exceeds_capacity_and_rejects_exactly_at_cap(
        capacity in 1usize..6,
        quantum in 1u64..5,
        ops in proptest::collection::vec((0usize..4, 0u64..2), 10..120),
    ) {
        let mut q = TenantQueues::new(capacity, quantum);
        let mut next_id = 0u64;
        let mut admitted = 0usize;
        let mut picked = 0usize;
        for (tenant, action) in ops {
            if action == 0 {
                // Admit a unit job for this tenant.
                next_id += 1;
                let before = q.depth(&format!("tenant-{tenant}"));
                match q.admit(qjob(tenant, next_id, 1)) {
                    Ok(()) => {
                        prop_assert!(before < capacity, "admitted past cap");
                        admitted += 1;
                    }
                    Err(ServeError::QueueFull { capacity: c, .. }) => {
                        prop_assert_eq!(c, capacity);
                        prop_assert!(before == capacity, "rejected below cap");
                    }
                    Err(e) => prop_assert!(false, "unexpected error {e}"),
                }
            } else if q.pick().is_some() {
                picked += 1;
            }
            for t in 0..4 {
                prop_assert!(q.depth(&format!("tenant-{t}")) <= capacity);
            }
        }
        // Everything admitted is still drainable: nothing was lost.
        while q.pick().is_some() {
            picked += 1;
        }
        prop_assert_eq!(picked, admitted);
        prop_assert!(q.is_empty());
    }

    /// Retries are cap-exempt but still drain: requeued jobs never
    /// vanish and never block fresh admissions of *other* tenants.
    #[test]
    fn requeues_are_never_lost(
        capacity in 1usize..4,
        jobs in proptest::collection::vec((0usize..3, 1u64..MAX_COST + 1), 1..30),
    ) {
        let mut q = TenantQueues::new(capacity, 2);
        let mut expected: Vec<u64> = Vec::new();
        for (i, (tenant, cost)) in jobs.iter().enumerate() {
            let id = i as u64 + 1;
            // Fill through the front door when there is room, else
            // requeue (modelling a retry of an admitted job).
            if q.depth(&format!("tenant-{tenant}")) < capacity {
                q.admit(qjob(*tenant, id, *cost)).unwrap();
            } else {
                q.requeue(qjob(*tenant, id, *cost));
            }
            expected.push(id);
        }
        let mut seen: Vec<u64> = std::iter::from_fn(|| q.pick()).map(|j| j.id).collect();
        seen.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(seen, expected);
    }

    /// The DRR starvation bound: while a tenant has pending work, the
    /// number of consecutive picks serving *other* tenants is linear in
    /// the tenant count — `ceil(MAX_COST/quantum + 2) * tenants` — no
    /// matter how the other tenants flood or what the job costs are.
    #[test]
    fn no_tenant_waits_more_than_the_drr_bound(
        tenants in 2usize..6,
        quantum in 1u64..5,
        jobs in proptest::collection::vec((0usize..6, 1u64..MAX_COST + 1), 20..150),
    ) {
        let mut q = TenantQueues::new(usize::MAX >> 1, quantum);
        let mut pending = vec![0usize; tenants];
        let mut id = 0u64;
        for (t, cost) in jobs {
            let t = t % tenants;
            id += 1;
            q.admit(qjob(t, id, cost)).unwrap();
            pending[t] += 1;
        }
        let bound = ((MAX_COST / quantum) as usize + 2) * tenants;
        let mut waited = vec![0usize; tenants];
        while let Some(job) = q.pick() {
            let served: usize = job.spec.tenant
                .strip_prefix("tenant-").unwrap().parse().unwrap();
            pending[served] -= 1;
            waited[served] = 0;
            for t in 0..tenants {
                if t != served && pending[t] > 0 {
                    waited[t] += 1;
                    prop_assert!(
                        waited[t] <= bound,
                        "tenant {t} starved: waited {} picks (bound {bound})", waited[t]
                    );
                }
            }
        }
        prop_assert!(pending.iter().all(|p| *p == 0));
    }

    /// A flooding tenant cannot crowd out a small tenant: with one
    /// victim holding a handful of unit jobs against heavy flooders,
    /// the victim finishes in the first portion of the schedule.
    #[test]
    fn flooders_cannot_starve_a_small_tenant(
        flooders in 1usize..4,
        flood_per in 10usize..40,
        victim_jobs in 1usize..5,
        quantum in 1u64..5,
    ) {
        let mut q = TenantQueues::new(usize::MAX >> 1, quantum);
        let mut id = 0u64;
        for f in 1..=flooders {
            for _ in 0..flood_per {
                id += 1;
                q.admit(qjob(f, id, MAX_COST)).unwrap();
            }
        }
        let victim_ids: Vec<u64> = (0..victim_jobs)
            .map(|_| {
                id += 1;
                q.admit(qjob(0, id, 1)).unwrap();
                id
            })
            .collect();
        let order: Vec<u64> = std::iter::from_fn(|| q.pick()).map(|j| j.id).collect();
        let last_victim = order
            .iter()
            .rposition(|o| victim_ids.contains(o))
            .expect("victim jobs were served");
        // Every victim job costs 1 and earns quantum per ring pass: all
        // of them complete within the DRR bound per job, far before the
        // floods drain.
        let per_job = ((MAX_COST / quantum) as usize + 2) * (flooders + 1);
        prop_assert!(
            last_victim < victim_jobs * per_job,
            "victim finished at pick {last_victim} of {} (bound {})",
            order.len(), victim_jobs * per_job
        );
    }
}
