//! Matrix **structure fingerprints** for the tuned-plan cache.
//!
//! A fingerprint summarises the *sparsity structure* of a matrix — shape,
//! nnz, a log₂ row-nnz histogram and a log₂ bandwidth (|i−j|) histogram —
//! and folds the summary into a stable `u64` digest with splitmix64. Two
//! matrices with the same structure (regardless of their numeric values)
//! share a digest; the auto-tuner (`graphene-tune`) uses it to key the
//! persistent plan cache, so a tuned configuration found for one matrix is
//! reused for every later matrix of the same structure.
//!
//! The digest is a pure function of the structure: no wall-clock, RNG,
//! pointer or host-environment inputs, so it is stable across processes,
//! platforms and runs — a cache written yesterday hits today.

use crate::formats::CsrMatrix;

/// Number of log₂ buckets in each histogram. Bucket `k < HIST_BUCKETS-1`
/// counts entries with `floor(log2(v)) + 1 == k` (bucket 0 holds `v == 0`);
/// the last bucket absorbs everything larger.
pub const HIST_BUCKETS: usize = 16;

/// Structural summary of a sparse matrix with a stable `u64` digest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StructureFingerprint {
    pub nrows: usize,
    pub ncols: usize,
    pub nnz: usize,
    /// `row_nnz_hist[k]` = rows whose nnz falls in log₂ bucket `k`
    /// (sums to `nrows`).
    pub row_nnz_hist: [u64; HIST_BUCKETS],
    /// `bandwidth_hist[k]` = entries whose |i−j| falls in log₂ bucket `k`
    /// (sums to `nnz`).
    pub bandwidth_hist: [u64; HIST_BUCKETS],
    /// splitmix64 fold of every field above.
    pub digest: u64,
}

/// One splitmix64 step — the same finaliser `ipu_sim::fault` uses for its
/// deterministic fault streams.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Fold one word into a running digest.
#[inline]
pub fn fold64(digest: u64, word: u64) -> u64 {
    let mut state = digest ^ word;
    splitmix64(&mut state)
}

/// Fold a byte string (e.g. a canonical config rendering) into a digest.
pub fn fold_bytes(mut digest: u64, bytes: &[u8]) -> u64 {
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        digest = fold64(digest, u64::from_le_bytes(word));
    }
    fold64(digest, bytes.len() as u64)
}

/// log₂ bucket of a magnitude: 0 for 0, else `min(floor(log2 v)+1, last)`.
#[inline]
fn bucket(v: usize) -> usize {
    if v == 0 {
        0
    } else {
        ((usize::BITS - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

impl StructureFingerprint {
    /// Fingerprint the structure of `a`. O(nnz); ignores numeric values.
    pub fn of(a: &CsrMatrix) -> StructureFingerprint {
        let mut row_nnz_hist = [0u64; HIST_BUCKETS];
        let mut bandwidth_hist = [0u64; HIST_BUCKETS];
        for row in 0..a.nrows {
            row_nnz_hist[bucket(a.row_nnz(row))] += 1;
            let (start, end) = (a.row_ptr[row], a.row_ptr[row + 1]);
            for &col in &a.col_idx[start..end] {
                bandwidth_hist[bucket(row.abs_diff(col as usize))] += 1;
            }
        }
        let mut digest = 0x5155_4c49_5052_4e47; // arbitrary fixed seed
        digest = fold64(digest, a.nrows as u64);
        digest = fold64(digest, a.ncols as u64);
        digest = fold64(digest, a.nnz() as u64);
        for &h in row_nnz_hist.iter().chain(&bandwidth_hist) {
            digest = fold64(digest, h);
        }
        StructureFingerprint {
            nrows: a.nrows,
            ncols: a.ncols,
            nnz: a.nnz(),
            row_nnz_hist,
            bandwidth_hist,
            digest,
        }
    }

    /// The digest as a fixed-width hex string (cache file names).
    pub fn hex(&self) -> String {
        format!("{:016x}", self.digest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::CooMatrix;
    use crate::gen::{poisson_2d_5pt, tridiagonal};

    #[test]
    fn digest_is_deterministic_and_value_independent() {
        let a = poisson_2d_5pt(7, 5, 1.0);
        let f1 = StructureFingerprint::of(&a);
        let f2 = StructureFingerprint::of(&a);
        assert_eq!(f1, f2);

        // Same structure, different values: identical digest.
        let mut b = a.clone();
        for v in &mut b.values {
            *v *= 3.25;
        }
        assert_eq!(StructureFingerprint::of(&b).digest, f1.digest);
    }

    #[test]
    fn digest_is_structure_sensitive() {
        let a = StructureFingerprint::of(&tridiagonal(40));
        let b = StructureFingerprint::of(&tridiagonal(41));
        assert_ne!(a.digest, b.digest, "row count must perturb the digest");

        // Same shape and nnz count, different bandwidth profile.
        let mut near = CooMatrix::new(40, 40);
        let mut far = CooMatrix::new(40, 40);
        for i in 0..40 {
            near.push(i, i, 1.0);
            far.push(i, i, 1.0);
            if i + 1 < 40 {
                near.push(i, i + 1, 1.0);
                far.push(i, (i + 20) % 40, 1.0);
            }
        }
        let fn_ = StructureFingerprint::of(&near.to_csr());
        let ff = StructureFingerprint::of(&far.to_csr());
        assert_eq!(fn_.nnz, ff.nnz);
        assert_ne!(fn_.digest, ff.digest, "bandwidth histogram must perturb the digest");
    }

    #[test]
    fn histograms_partition_rows_and_nnz() {
        let a = poisson_2d_5pt(9, 9, 1.0);
        let f = StructureFingerprint::of(&a);
        assert_eq!(f.row_nnz_hist.iter().sum::<u64>(), a.nrows as u64);
        assert_eq!(f.bandwidth_hist.iter().sum::<u64>(), a.nnz() as u64);
        assert_eq!(f.hex().len(), 16);
    }

    #[test]
    fn fold_bytes_separates_lengths() {
        // "ab" + "c" must not collide with "a" + "bc".
        let h1 = fold_bytes(fold_bytes(7, b"ab"), b"c");
        let h2 = fold_bytes(fold_bytes(7, b"a"), b"bc");
        assert_ne!(h1, h2);
    }
}
