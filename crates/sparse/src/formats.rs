//! Sparse matrix storage formats.
//!
//! `CsrMatrix` is the standard three-array Compressed Row Storage format.
//! `ModifiedCsr` is the paper's variant (§II-C): diagonal entries live in a
//! separate dense array instead of inside the CSR structure, saving their
//! column indices and giving solvers O(1) access to each row's pivot.
//! `CooMatrix` is the assembly/interchange format.
//!
//! Host-side values are `f64` (full precision for assembly and reference
//! computations); conversion to device precision happens at upload.

use std::fmt;

/// Coordinate-format matrix used for assembly and IO.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CooMatrix {
    pub nrows: usize,
    pub ncols: usize,
    /// (row, col, value) triplets, in any order; duplicates are summed on
    /// conversion to CSR.
    pub entries: Vec<(u32, u32, f64)>,
}

impl CooMatrix {
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix { nrows, ncols, entries: Vec::new() }
    }

    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.nrows && col < self.ncols);
        self.entries.push((row as u32, col as u32, value));
    }

    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Convert to CSR, summing duplicate coordinates and dropping explicit
    /// zeros produced by the summation.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut entries = self.entries.clone();
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len());
        row_ptr.push(0);

        let mut current_row = 0u32;
        let mut i = 0;
        while i < entries.len() {
            let (r, c, _) = entries[i];
            while current_row < r {
                row_ptr.push(col_idx.len());
                current_row += 1;
            }
            // Sum duplicates.
            let mut v = 0.0;
            let mut j = i;
            while j < entries.len() && entries[j].0 == r && entries[j].1 == c {
                v += entries[j].2;
                j += 1;
            }
            col_idx.push(c);
            values.push(v);
            i = j;
        }
        while row_ptr.len() <= self.nrows {
            row_ptr.push(col_idx.len());
        }
        CsrMatrix { nrows: self.nrows, ncols: self.ncols, row_ptr, col_idx, values }
    }
}

/// Compressed Row Storage (CSR/CRS) matrix.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CsrMatrix {
    pub nrows: usize,
    pub ncols: usize,
    /// `row_ptr[i]..row_ptr[i+1]` indexes row i's entries; length nrows+1.
    pub row_ptr: Vec<usize>,
    pub col_idx: Vec<u32>,
    pub values: Vec<f64>,
}

impl CsrMatrix {
    /// An identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column indices and values of one row.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let range = self.row_ptr[i]..self.row_ptr[i + 1];
        (&self.col_idx[range.clone()], &self.values[range])
    }

    /// Number of entries in a row.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Entry (i, j), or 0 if not stored. Binary search within the row
    /// (rows are sorted by column).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&(j as u32)) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Reference SpMV: `y = A * x` in f64.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            let mut acc = 0.0;
            for (c, v) in cols.iter().zip(vals) {
                acc += v * x[*c as usize];
            }
            y[i] = acc;
        }
    }

    /// `y = A * x`, allocating the result.
    pub fn spmv_alloc(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        self.spmv(x, &mut y);
        y
    }

    /// Structural + numerical symmetry check (within `tol` relative).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (c, v) in cols.iter().zip(vals) {
                let vt = self.get(*c as usize, i);
                let scale = v.abs().max(vt.abs()).max(1e-300);
                if (v - vt).abs() / scale > tol {
                    return false;
                }
            }
        }
        true
    }

    /// The dense diagonal (0.0 where a diagonal entry is missing).
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.nrows.min(self.ncols);
        (0..n).map(|i| self.get(i, i)).collect()
    }

    /// Whether every diagonal entry exists and is nonzero — a prerequisite
    /// for the modified CSR format and for Gauss-Seidel/ILU.
    pub fn has_full_nonzero_diagonal(&self) -> bool {
        self.nrows == self.ncols && self.diagonal().iter().all(|&d| d != 0.0)
    }

    /// Transpose (CSR -> CSR of Aᵀ).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols];
        for &c in &self.col_idx {
            counts[c as usize] += 1;
        }
        let mut row_ptr = vec![0usize; self.ncols + 1];
        for i in 0..self.ncols {
            row_ptr[i + 1] = row_ptr[i] + counts[i];
        }
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = row_ptr.clone();
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (c, v) in cols.iter().zip(vals) {
                let dst = next[*c as usize];
                col_idx[dst] = i as u32;
                values[dst] = *v;
                next[*c as usize] += 1;
            }
        }
        CsrMatrix { nrows: self.ncols, ncols: self.nrows, row_ptr, col_idx, values }
    }

    /// Extract the submatrix of `rows` with columns renumbered by `col_map`
    /// (global column -> local column, `u32::MAX` = dropped).
    pub fn extract(&self, rows: &[usize], col_map: &[u32]) -> CsrMatrix {
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for &r in rows {
            let (cols, vals) = self.row(r);
            let mut entries: Vec<(u32, f64)> = cols
                .iter()
                .zip(vals)
                .filter_map(|(c, v)| {
                    let lc = col_map[*c as usize];
                    (lc != u32::MAX).then_some((lc, *v))
                })
                .collect();
            entries.sort_unstable_by_key(|e| e.0);
            for (c, v) in entries {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        let ncols = col_map.iter().filter(|&&c| c != u32::MAX).count();
        CsrMatrix { nrows: rows.len(), ncols, row_ptr, col_idx, values }
    }

    /// Convert to the paper's modified CSR format. Requires a full nonzero
    /// diagonal.
    pub fn to_modified(&self) -> ModifiedCsr {
        assert!(
            self.has_full_nonzero_diagonal(),
            "modified CSR requires a full nonzero diagonal (apply a row permutation first)"
        );
        let n = self.nrows;
        let mut diag = vec![0.0; n];
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for i in 0..n {
            let (cols, vals) = self.row(i);
            for (c, v) in cols.iter().zip(vals) {
                if *c as usize == i {
                    diag[i] = *v;
                } else {
                    col_idx.push(*c);
                    values.push(*v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        ModifiedCsr { nrows: n, ncols: self.ncols, diag, row_ptr, col_idx, values }
    }

    /// Apply a symmetric permutation: `B[i][j] = A[perm[i]][perm[j]]`
    /// (i.e. `perm` maps new index -> old index).
    pub fn permute_symmetric(&self, perm: &[usize]) -> CsrMatrix {
        assert_eq!(self.nrows, self.ncols);
        assert_eq!(perm.len(), self.nrows);
        let mut inv = vec![0u32; perm.len()];
        for (new, &old) in perm.iter().enumerate() {
            inv[old] = new as u32;
        }
        let mut coo = CooMatrix::new(self.nrows, self.ncols);
        for new_row in 0..self.nrows {
            let old_row = perm[new_row];
            let (cols, vals) = self.row(old_row);
            for (c, v) in cols.iter().zip(vals) {
                coo.push(new_row, inv[*c as usize] as usize, *v);
            }
        }
        coo.to_csr()
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl fmt::Display for CsrMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CsrMatrix {}x{} ({} nnz)", self.nrows, self.ncols, self.nnz())
    }
}

/// The paper's modified CSR: off-diagonal CSR + dense diagonal array.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ModifiedCsr {
    pub nrows: usize,
    pub ncols: usize,
    /// Dense diagonal, length nrows.
    pub diag: Vec<f64>,
    /// CSR of the off-diagonal entries only.
    pub row_ptr: Vec<usize>,
    pub col_idx: Vec<u32>,
    pub values: Vec<f64>,
}

impl ModifiedCsr {
    /// Off-diagonal entries of one row.
    #[inline]
    pub fn off_diag_row(&self, i: usize) -> (&[u32], &[f64]) {
        let range = self.row_ptr[i]..self.row_ptr[i + 1];
        (&self.col_idx[range.clone()], &self.values[range])
    }

    /// Total stored entries (off-diagonals + diagonal).
    pub fn nnz(&self) -> usize {
        self.values.len() + self.nrows
    }

    /// Memory footprint in bytes with f32 values and u32 indices (device
    /// layout) — demonstrates the format's saving over plain CSR.
    pub fn device_bytes(&self) -> usize {
        // diag f32 + offdiag f32 + col idx u32 + row ptr u32
        4 * self.diag.len()
            + 4 * self.values.len()
            + 4 * self.col_idx.len()
            + 4 * self.row_ptr.len()
    }

    /// Reference SpMV `y = A x` including the diagonal.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        for i in 0..self.nrows {
            let (cols, vals) = self.off_diag_row(i);
            let mut acc = self.diag[i] * x[i];
            for (c, v) in cols.iter().zip(vals) {
                acc += v * x[*c as usize];
            }
            y[i] = acc;
        }
    }

    /// Reconstruct a plain CSR (for testing / export).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut coo = CooMatrix::new(self.nrows, self.ncols);
        for i in 0..self.nrows {
            coo.push(i, i, self.diag[i]);
            let (cols, vals) = self.off_diag_row(i);
            for (c, v) in cols.iter().zip(vals) {
                coo.push(i, *c as usize, *v);
            }
        }
        coo.to_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3x3 test matrix:
    /// [ 4 -1  0]
    /// [-1  4 -1]
    /// [ 0 -1  4]
    fn tridiag3() -> CsrMatrix {
        let mut coo = CooMatrix::new(3, 3);
        for i in 0..3 {
            coo.push(i, i, 4.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i < 2 {
                coo.push(i, i + 1, -1.0);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn coo_to_csr_sums_duplicates() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 0, 2.0);
        coo.push(1, 1, 5.0);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(0, 0), 3.0);
        assert_eq!(csr.get(1, 1), 5.0);
        assert_eq!(csr.get(0, 1), 0.0);
    }

    #[test]
    fn csr_handles_empty_rows() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push(0, 0, 1.0);
        coo.push(3, 3, 2.0);
        let csr = coo.to_csr();
        assert_eq!(csr.row_nnz(1), 0);
        assert_eq!(csr.row_nnz(2), 0);
        assert_eq!(csr.get(3, 3), 2.0);
        assert_eq!(csr.row_ptr.len(), 5);
    }

    #[test]
    fn spmv_matches_dense() {
        let a = tridiag3();
        let x = vec![1.0, 2.0, 3.0];
        let y = a.spmv_alloc(&x);
        assert_eq!(y, vec![4.0 - 2.0, -1.0 + 8.0 - 3.0, -2.0 + 12.0]);
    }

    #[test]
    fn symmetry_detection() {
        assert!(tridiag3().is_symmetric(1e-12));
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        assert!(!coo.to_csr().is_symmetric(1e-12));
    }

    #[test]
    fn transpose_involution() {
        let mut coo = CooMatrix::new(3, 4);
        coo.push(0, 1, 2.0);
        coo.push(2, 0, -1.0);
        coo.push(1, 3, 5.0);
        let a = coo.to_csr();
        let att = a.transpose().transpose();
        assert_eq!(a, att);
        assert_eq!(a.transpose().get(1, 0), 2.0);
    }

    #[test]
    fn modified_csr_roundtrip_and_spmv() {
        let a = tridiag3();
        let m = a.to_modified();
        assert_eq!(m.diag, vec![4.0, 4.0, 4.0]);
        assert_eq!(m.values.len(), 4); // 4 off-diagonal entries
        assert_eq!(m.to_csr(), a);
        let x = vec![1.0, -1.0, 0.5];
        let mut y1 = vec![0.0; 3];
        let mut y2 = vec![0.0; 3];
        a.spmv(&x, &mut y1);
        m.spmv(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn modified_csr_saves_memory() {
        let a = tridiag3();
        let m = a.to_modified();
        // Plain CSR device bytes: values f32 + col u32 per nnz + row_ptr.
        let plain = 8 * a.nnz() + 4 * (a.nrows + 1);
        assert!(m.device_bytes() < plain);
    }

    #[test]
    #[should_panic(expected = "nonzero diagonal")]
    fn modified_csr_requires_diagonal() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        coo.to_csr().to_modified();
    }

    #[test]
    fn symmetric_permutation_preserves_spmv() {
        let a = tridiag3();
        let perm = vec![2, 0, 1]; // new -> old
        let b = a.permute_symmetric(&perm);
        // B x' where x'[new] = x[perm[new]] must equal (A x) permuted.
        let x = vec![1.0, 2.0, 3.0];
        let xp: Vec<f64> = perm.iter().map(|&o| x[o]).collect();
        let y = a.spmv_alloc(&x);
        let yp = b.spmv_alloc(&xp);
        for (new, &old) in perm.iter().enumerate() {
            assert!((yp[new] - y[old]).abs() < 1e-14);
        }
    }

    #[test]
    fn extract_renumbers_columns() {
        let a = tridiag3();
        // Take rows {1, 2}, map columns 1->0, 2->1, drop column 0.
        let mut col_map = vec![u32::MAX; 3];
        col_map[1] = 0;
        col_map[2] = 1;
        let sub = a.extract(&[1, 2], &col_map);
        assert_eq!(sub.nrows, 2);
        assert_eq!(sub.ncols, 2);
        assert_eq!(sub.get(0, 0), 4.0); // A[1][1]
        assert_eq!(sub.get(0, 1), -1.0); // A[1][2]
        assert_eq!(sub.get(1, 0), -1.0); // A[2][1]
        assert_eq!(sub.get(1, 1), 4.0); // A[2][2]
    }

    #[test]
    fn identity_spmv_is_identity() {
        let i = CsrMatrix::identity(5);
        let x: Vec<f64> = (0..5).map(|v| v as f64).collect();
        assert_eq!(i.spmv_alloc(&x), x);
        assert!(i.has_full_nonzero_diagonal());
    }
}
