//! Deterministic problem generators.
//!
//! The paper's evaluation (§VI-A) uses two matrix sources: discretisations
//! of the Poisson equation on regular 3D grids with a 7-point stencil (for
//! the scaling study), and four SPD matrices from the SuiteSparse
//! collection (for the solver benchmarks). The Poisson generators here are
//! exact reproductions; the SuiteSparse matrices are not redistributable or
//! downloadable in this environment, so [`suitesparse`] provides synthetic
//! *analogues* that match the documented statistics (rows, nnz/row,
//! symmetry, positive-definiteness, conditioning class) at a configurable
//! scale — see that module's docs for the per-matrix substitution record.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::formats::{CooMatrix, CsrMatrix};

/// A regular 3D grid and its row numbering, kept alongside the matrix so
/// partitioners can do geometric (box) decompositions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grid3 {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
}

impl Grid3 {
    #[inline]
    pub fn index(&self, x: usize, y: usize, z: usize) -> usize {
        (z * self.ny + y) * self.nx + x
    }

    #[inline]
    pub fn coords(&self, i: usize) -> (usize, usize, usize) {
        let x = i % self.nx;
        let y = (i / self.nx) % self.ny;
        let z = i / (self.nx * self.ny);
        (x, y, z)
    }

    pub fn num_cells(&self) -> usize {
        self.nx * self.ny * self.nz
    }
}

/// 7-point finite-difference discretisation of −Δu on an
/// `nx × ny × nz` grid with Dirichlet boundaries: diagonal 6, neighbours −1.
/// SPD; the scaling-study workload of the paper (Figs 5, 6).
pub fn poisson_3d_7pt(nx: usize, ny: usize, nz: usize) -> CsrMatrix {
    let g = Grid3 { nx, ny, nz };
    let n = g.num_cells();
    let mut coo = CooMatrix::new(n, n);
    coo.entries.reserve(7 * n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = g.index(x, y, z);
                coo.push(i, i, 6.0);
                if x > 0 {
                    coo.push(i, g.index(x - 1, y, z), -1.0);
                }
                if x + 1 < nx {
                    coo.push(i, g.index(x + 1, y, z), -1.0);
                }
                if y > 0 {
                    coo.push(i, g.index(x, y - 1, z), -1.0);
                }
                if y + 1 < ny {
                    coo.push(i, g.index(x, y + 1, z), -1.0);
                }
                if z > 0 {
                    coo.push(i, g.index(x, y, z - 1), -1.0);
                }
                if z + 1 < nz {
                    coo.push(i, g.index(x, y, z + 1), -1.0);
                }
            }
        }
    }
    coo.to_csr()
}

/// 5-point discretisation of an anisotropic Laplacian
/// −(∂²/∂x² + eps ∂²/∂y²) on an `nx × ny` grid, Dirichlet boundaries.
/// `eps = 1` is the standard Poisson problem; `eps ≫ 1` or `≪ 1` raises the
/// condition number (used by the shell-structure analogue).
pub fn poisson_2d_5pt(nx: usize, ny: usize, eps: f64) -> CsrMatrix {
    let n = nx * ny;
    let idx = |x: usize, y: usize| y * nx + x;
    let mut coo = CooMatrix::new(n, n);
    coo.entries.reserve(5 * n);
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            coo.push(i, i, 2.0 + 2.0 * eps);
            if x > 0 {
                coo.push(i, idx(x - 1, y), -1.0);
            }
            if x + 1 < nx {
                coo.push(i, idx(x + 1, y), -1.0);
            }
            if y > 0 {
                coo.push(i, idx(x, y - 1), -eps);
            }
            if y + 1 < ny {
                coo.push(i, idx(x, y + 1), -eps);
            }
        }
    }
    coo.to_csr()
}

/// Heterogeneous-coefficient 7-point Poisson: each cell gets a conductivity
/// `k = contrast^u` with `u ~ U(-1, 1)`; face weights are harmonic means.
/// Dirichlet boundaries keep it SPD. Larger `contrast` raises the condition
/// number — the knob used to match the conditioning class of the paper's
/// geomechanics matrices.
pub fn heterogeneous_poisson_3d(
    nx: usize,
    ny: usize,
    nz: usize,
    contrast: f64,
    seed: u64,
) -> CsrMatrix {
    assert!(contrast >= 1.0);
    let g = Grid3 { nx, ny, nz };
    let n = g.num_cells();
    let mut rng = SmallRng::seed_from_u64(seed);
    let k: Vec<f64> = (0..n).map(|_| contrast.powf(rng.gen_range(-1.0..1.0))).collect();
    let w = |i: usize, j: usize| 2.0 * k[i] * k[j] / (k[i] + k[j]);

    let mut coo = CooMatrix::new(n, n);
    coo.entries.reserve(7 * n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = g.index(x, y, z);
                let mut diag = 0.0;
                let mut neighbour = |j: usize, coo: &mut CooMatrix| {
                    let wij = w(i, j);
                    coo.push(i, j, -wij);
                    diag += wij;
                };
                if x > 0 {
                    neighbour(g.index(x - 1, y, z), &mut coo);
                }
                if x + 1 < nx {
                    neighbour(g.index(x + 1, y, z), &mut coo);
                }
                if y > 0 {
                    neighbour(g.index(x, y - 1, z), &mut coo);
                }
                if y + 1 < ny {
                    neighbour(g.index(x, y + 1, z), &mut coo);
                }
                if z > 0 {
                    neighbour(g.index(x, y, z - 1), &mut coo);
                }
                if z + 1 < nz {
                    neighbour(g.index(x, y, z + 1), &mut coo);
                }
                // Dirichlet: boundary faces contribute their own k to the
                // diagonal, keeping the matrix nonsingular.
                let missing = 6
                    - ((x > 0) as usize
                        + (x + 1 < nx) as usize
                        + (y > 0) as usize
                        + (y + 1 < ny) as usize
                        + (z > 0) as usize
                        + (z + 1 < nz) as usize);
                diag += missing as f64 * k[i];
                coo.push(i, i, diag);
            }
        }
    }
    coo.to_csr()
}

/// SPD tridiagonal matrix (1D Poisson): diag 2, off-diagonals −1.
pub fn tridiagonal(n: usize) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 2.0);
        if i > 0 {
            coo.push(i, i - 1, -1.0);
        }
        if i + 1 < n {
            coo.push(i, i + 1, -1.0);
        }
    }
    coo.to_csr()
}

/// Random symmetric diagonally-dominant (hence SPD) matrix with roughly
/// `nnz_per_row` entries per row. Used by property tests.
pub fn random_spd(n: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = CooMatrix::new(n, n);
    let mut row_sums = vec![0.0f64; n];
    // A 1x1 matrix has no valid off-diagonal target; redrawing would spin
    // forever.
    let offdiag_each = if n < 2 { 0 } else { nnz_per_row.saturating_sub(1) / 2 };
    for i in 0..n {
        for _ in 0..offdiag_each {
            // Redraw on the diagonal instead of skipping: a skip silently
            // drops the row below its nnz budget. Duplicate (i, j) draws
            // are allowed — `CooMatrix::to_csr` sums duplicates, and
            // `row_sums` accumulates |v| per draw, which upper-bounds the
            // merged |Σv|, so strict dominance survives the merge.
            let mut j = rng.gen_range(0..n);
            while j == i {
                j = rng.gen_range(0..n);
            }
            let v = rng.gen_range(-1.0..1.0);
            coo.push(i, j, v);
            coo.push(j, i, v);
            row_sums[i] += v.abs();
            row_sums[j] += v.abs();
        }
    }
    for i in 0..n {
        // Strict diagonal dominance with margin.
        coo.push(i, i, row_sums[i] + 1.0 + rng.gen_range(0.0..0.5));
    }
    coo.to_csr()
}

/// Kronecker product `A ⊗ B`. If both factors are SPD the product is SPD;
/// used to expand scalar stencils into multi-DOF "block" matrices the way
/// structural problems (shells, elasticity) couple displacement components.
pub fn kron(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    let n = a.nrows * b.nrows;
    let m = a.ncols * b.ncols;
    let mut coo = CooMatrix::new(n, m);
    coo.entries.reserve(a.nnz() * b.nnz());
    for ia in 0..a.nrows {
        let (acols, avals) = a.row(ia);
        for ib in 0..b.nrows {
            let (bcols, bvals) = b.row(ib);
            let row = ia * b.nrows + ib;
            for (ja, va) in acols.iter().zip(avals) {
                for (jb, vb) in bcols.iter().zip(bvals) {
                    let col = *ja as usize * b.ncols + *jb as usize;
                    coo.push(row, col, va * vb);
                }
            }
        }
    }
    coo.to_csr()
}

/// A small dense SPD matrix for block expansion: `I + c·(ones)` with unit
/// diagonal boost — eigenvalues 1 and 1 + c·b, SPD for c > 0.
pub fn dense_spd_block(b: usize, c: f64) -> CsrMatrix {
    let mut coo = CooMatrix::new(b, b);
    for i in 0..b {
        for j in 0..b {
            let v = if i == j { 1.0 + c } else { c };
            coo.push(i, j, v);
        }
    }
    coo.to_csr()
}

/// Deterministic right-hand side: `b = A·x*` for the all-ones solution, so
/// the solver's true error is measurable.
pub fn rhs_for_ones(a: &CsrMatrix) -> Vec<f64> {
    a.spmv_alloc(&vec![1.0; a.ncols])
}

/// Deterministic pseudo-random vector in [-1, 1).
pub fn random_vector(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

pub mod suitesparse;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_3d_shape_and_symmetry() {
        let a = poisson_3d_7pt(4, 3, 2);
        assert_eq!(a.nrows, 24);
        assert!(a.is_symmetric(0.0));
        assert!(a.has_full_nonzero_diagonal());
        // Interior cell has 7 entries; corner has 4.
        assert_eq!(a.row_nnz(0), 4);
        // nnz = 7n - 2(boundary faces) ... check against direct count.
        let expect = 24 * 7 - 2 * (3 * 2/*x faces*/ + 4 * 2/*y faces*/ + 4 * 3/*z faces*/);
        assert_eq!(a.nnz(), expect);
    }

    #[test]
    fn poisson_row_sums_vanish_in_interior() {
        let a = poisson_3d_7pt(5, 5, 5);
        let g = Grid3 { nx: 5, ny: 5, nz: 5 };
        let i = g.index(2, 2, 2);
        let (_, vals) = a.row(i);
        assert_eq!(vals.iter().sum::<f64>(), 0.0);
        assert_eq!(vals.len(), 7);
    }

    #[test]
    fn grid3_index_roundtrip() {
        let g = Grid3 { nx: 4, ny: 5, nz: 6 };
        for i in 0..g.num_cells() {
            let (x, y, z) = g.coords(i);
            assert_eq!(g.index(x, y, z), i);
        }
    }

    #[test]
    fn poisson_2d_anisotropy() {
        let a = poisson_2d_5pt(4, 4, 100.0);
        assert!(a.is_symmetric(0.0));
        assert_eq!(a.get(5, 5), 2.0 + 200.0);
        assert_eq!(a.get(5, 6), -1.0); // x-neighbour
        assert_eq!(a.get(5, 9), -100.0); // y-neighbour
    }

    #[test]
    fn heterogeneous_poisson_is_spd_shaped() {
        let a = heterogeneous_poisson_3d(4, 4, 4, 1000.0, 42);
        assert!(a.is_symmetric(1e-12));
        assert!(a.has_full_nonzero_diagonal());
        // Weak diagonal dominance with Dirichlet margin at boundaries.
        for i in 0..a.nrows {
            let (cols, vals) = a.row(i);
            let mut diag = 0.0;
            let mut off = 0.0;
            for (c, v) in cols.iter().zip(vals) {
                if *c as usize == i {
                    diag = *v;
                } else {
                    off += v.abs();
                }
            }
            assert!(diag >= off - 1e-9, "row {i}: diag {diag} < offsum {off}");
        }
    }

    #[test]
    fn heterogeneous_poisson_deterministic() {
        let a = heterogeneous_poisson_3d(3, 3, 3, 10.0, 7);
        let b = heterogeneous_poisson_3d(3, 3, 3, 10.0, 7);
        assert_eq!(a, b);
        let c = heterogeneous_poisson_3d(3, 3, 3, 10.0, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn random_spd_is_symmetric_dominant() {
        let a = random_spd(50, 7, 123);
        assert!(a.is_symmetric(1e-12));
        for i in 0..a.nrows {
            let (cols, vals) = a.row(i);
            let diag = a.get(i, i);
            let off: f64 = cols
                .iter()
                .zip(vals)
                .filter(|(c, _)| **c as usize != i)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(diag > off, "row {i}");
        }
    }

    #[test]
    fn random_spd_nnz_bounds_pinned() {
        // Regression: a diagonal draw used to be *skipped*, silently
        // shrinking rows below the requested budget. With redraws, every
        // row makes exactly `offdiag_each` symmetric draw pairs, so the
        // structural nnz is n (diagonal) + 2·n·offdiag_each draws minus
        // whatever duplicate (i, j) draws merged in `to_csr`.
        for seed in 0..50 {
            // n = 2 forces every off-diagonal draw onto the single valid
            // target, the worst case for both old bugs: j == i draws are
            // frequent and every repeated draw is a duplicate.
            let a = random_spd(2, 3, seed);
            assert_eq!(a.nnz(), 4, "seed {seed}: 2 diag + 1 merged pair each side");
            assert!(a.is_symmetric(1e-12));

            let n = 30;
            let nnz_per_row = 5;
            let offdiag_each = (nnz_per_row - 1) / 2;
            let a = random_spd(n, nnz_per_row, seed);
            // Lower bound: the diagonal plus at least one merged entry
            // pair per row's draws. Upper bound: nothing merged at all.
            assert!(a.nnz() > n, "seed {seed}: off-diagonals present");
            assert!(
                a.nnz() <= n + 2 * n * offdiag_each,
                "seed {seed}: nnz {} above the duplicate-free maximum",
                a.nnz()
            );
            // No self-entry draw may survive as a dropped slot: every row
            // has its diagonal plus at least one off-diagonal entry.
            for i in 0..n {
                assert!(a.get(i, i) != 0.0, "seed {seed}: row {i} diagonal");
                assert!(a.row_nnz(i) >= 2, "seed {seed}: row {i} lost its draws");
            }
            assert!(a.is_symmetric(1e-12));
        }
        // Degenerate sizes terminate (the redraw loop must not spin).
        assert_eq!(random_spd(1, 5, 7).nnz(), 1);
        assert_eq!(random_spd(0, 5, 7).nnz(), 0);
    }

    #[test]
    fn kron_matches_definition() {
        let a = tridiagonal(2); // [[2,-1],[-1,2]]
        let b = dense_spd_block(2, 0.5);
        let k = kron(&a, &b);
        assert_eq!(k.nrows, 4);
        // k[0][0] = a[0][0] * b[0][0] = 2 * 1.5
        assert_eq!(k.get(0, 0), 3.0);
        // k[0][2] = a[0][1] * b[0][0] = -1 * 1.5
        assert_eq!(k.get(0, 2), -1.5);
        // k[1][2] = a[0][1]*b[1][0] = -0.5
        assert_eq!(k.get(1, 2), -0.5);
        assert!(k.is_symmetric(1e-15));
    }

    #[test]
    fn rhs_for_ones_solves_back() {
        let a = tridiagonal(5);
        let b = rhs_for_ones(&a);
        // A * 1 = b by construction.
        assert_eq!(b, a.spmv_alloc(&vec![1.0; 5]));
        // First row: 2 - 1 = 1.
        assert_eq!(b[0], 1.0);
        // Interior: 2 - 1 - 1 = 0.
        assert_eq!(b[2], 0.0);
    }
}
