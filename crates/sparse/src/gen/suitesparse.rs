//! Synthetic analogues of the paper's SuiteSparse benchmark matrices.
//!
//! The paper evaluates on four real, symmetric, positive-definite matrices
//! from the SuiteSparse collection (Table II). The collection is not
//! reachable from this environment and the matrices are too large to vendor,
//! so each gets a deterministic generator matched to its documented
//! characteristics. The substitution record, per matrix:
//!
//! | Matrix      | Paper (rows / nnz / domain)            | Analogue |
//! |-------------|----------------------------------------|----------|
//! | G3_circuit  | 1.58 M / 7.7 M (~4.8/row), circuit     | 2D 5-point Laplacian — same nnz/row class (≤5), SPD, large-diameter graph like a power grid |
//! | af_shell7   | 0.50 M / 17.6 M (~35/row), sheet-metal shell | anisotropic 2D 5-point ⊗ dense 6×6 SPD block (the 6 DOFs of a shell node; ≤30 entries/row) — anisotropy reproduces shell ill-conditioning |
//! | Geo_1438    | 1.44 M / 63.1 M (~44/row), geomechanics | heterogeneous 3D 7-point ⊗ dense 3×3 SPD block (3 displacement DOFs, ≤21 entries/row) with coefficient contrast for conditioning |
//! | Hook_1498   | 1.50 M / 60.9 M (~41/row), steel hook   | as Geo_1438 with stronger heterogeneity and different seed |
//!
//! What the experiments actually exercise — SPD-ness, nnz/row within a
//! small factor, graph locality, and a condition number high enough that a
//! single-precision Krylov solver stalls around 1e-6 relative residual —
//! is preserved; exact spectra are not. A real `.mtx` file can be
//! substituted at any time through [`crate::io::read_matrix_market_file`].
//!
//! All generators take `scale ∈ (0, 1]`: the fraction of the paper's row
//! count to generate (default benches use ~1–5% for CI-friendly runtimes).

use crate::formats::CsrMatrix;
use crate::gen::{dense_spd_block, heterogeneous_poisson_3d, kron, poisson_2d_5pt};

/// Static description of one benchmark matrix (paper Table II).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MatrixInfo {
    pub name: &'static str,
    pub paper_rows: usize,
    pub paper_nnz: usize,
}

/// The paper's Table II inventory.
pub const PAPER_MATRICES: [MatrixInfo; 4] = [
    MatrixInfo { name: "G3_circuit", paper_rows: 1_585_478, paper_nnz: 7_660_826 },
    MatrixInfo { name: "af_shell7", paper_rows: 504_855, paper_nnz: 17_579_155 },
    MatrixInfo { name: "Geo_1438", paper_rows: 1_437_960, paper_nnz: 63_156_690 },
    MatrixInfo { name: "Hook_1498", paper_rows: 1_498_023, paper_nnz: 60_917_445 },
];

fn scaled_side(paper_rows: usize, scale: f64, dofs_per_node: usize, dims: u32) -> usize {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let target_nodes = (paper_rows as f64 * scale / dofs_per_node as f64).max(64.0);
    (target_nodes.powf(1.0 / dims as f64).round() as usize).max(4)
}

/// Analogue of **G3_circuit** (circuit simulation, ~4.8 nnz/row).
pub fn g3_circuit_like(scale: f64) -> CsrMatrix {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    let side = scaled_side(PAPER_MATRICES[0].paper_rows, scale, 1, 2);
    // 2D Laplacian grid (≤5 entries/row, SPD, huge graph diameter) plus a
    // sprinkling of random symmetric "via" connections: circuit matrices
    // are *irregular*, which is what gives their triangular factors deep
    // dependency chains (poor level-set parallelism) — a property the
    // Table IV breakdown is sensitive to.
    let grid = poisson_2d_5pt(side, side, 1.0);
    let n = grid.nrows;
    let mut coo = crate::formats::CooMatrix::new(n, n);
    for i in 0..n {
        let (cols, vals) = grid.row(i);
        for (c, v) in cols.iter().zip(vals) {
            coo.push(i, *c as usize, *v);
        }
    }
    let mut rng = SmallRng::seed_from_u64(3);
    for i in 0..n / 20 {
        let a = (i * 20 + rng.gen_range(0..20)).min(n - 1);
        let b = rng.gen_range(0..n);
        if a == b {
            continue;
        }
        // Conductance-like coupling: keep diagonal dominance.
        coo.push(a, b, -0.5);
        coo.push(b, a, -0.5);
        coo.push(a, a, 0.5);
        coo.push(b, b, 0.5);
    }
    coo.to_csr()
}

/// Analogue of **af_shell7** (sheet-metal shell, ~35 nnz/row, ill-conditioned).
pub fn af_shell7_like(scale: f64) -> CsrMatrix {
    let side = scaled_side(PAPER_MATRICES[1].paper_rows, scale, 6, 2);
    // Thin-shell stiffness: strongly anisotropic membrane with the six
    // coupled DOFs of a shell node (3 displacements + 3 rotations).
    // 5-point stencil ⊗ dense 6x6 SPD block: ≤30 entries/row, matching the
    // paper's ~35/row class; the anisotropy reproduces shell
    // ill-conditioning.
    let scalar = poisson_2d_5pt(side, side, 500.0);
    kron(&scalar, &dense_spd_block(6, 0.3))
}

/// Analogue of **Geo_1438** (geomechanical deformation, ~44 nnz/row).
pub fn geo_1438_like(scale: f64) -> CsrMatrix {
    let side = scaled_side(PAPER_MATRICES[2].paper_rows, scale, 3, 3);
    // 3D heterogeneous diffusion ⊗ 3 displacement DOFs.
    let scalar = heterogeneous_poisson_3d(side, side, side, 1e3, 1438);
    kron(&scalar, &dense_spd_block(3, 0.4))
}

/// Analogue of **Hook_1498** (steel hook elasticity, ~41 nnz/row).
pub fn hook_1498_like(scale: f64) -> CsrMatrix {
    let side = scaled_side(PAPER_MATRICES[3].paper_rows, scale, 3, 3);
    let scalar = heterogeneous_poisson_3d(side, side, side, 1e4, 1498);
    kron(&scalar, &dense_spd_block(3, 0.3))
}

/// Generate the analogue by paper name (panics on unknown names).
pub fn by_name(name: &str, scale: f64) -> CsrMatrix {
    match name {
        "G3_circuit" => g3_circuit_like(scale),
        "af_shell7" => af_shell7_like(scale),
        "Geo_1438" => geo_1438_like(scale),
        "Hook_1498" => hook_1498_like(scale),
        other => panic!("unknown benchmark matrix: {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_analogues_are_spd_shaped() {
        for info in PAPER_MATRICES {
            let a = by_name(info.name, 0.002);
            assert!(a.nrows > 0, "{}", info.name);
            assert!(a.is_symmetric(1e-10), "{} not symmetric", info.name);
            assert!(a.has_full_nonzero_diagonal(), "{} diagonal", info.name);
        }
    }

    #[test]
    fn nnz_per_row_matches_class() {
        // G3_circuit class: < 6 per row. Shell/geo class: tens per row.
        let g3 = g3_circuit_like(0.002);
        let g3_density = g3.nnz() as f64 / g3.nrows as f64;
        assert!(g3_density < 6.0, "g3 density {g3_density}");

        let shell = af_shell7_like(0.01);
        let d = shell.nnz() as f64 / shell.nrows as f64;
        assert!((20.0..36.0).contains(&d), "af_shell7 density {d}");

        let geo = geo_1438_like(0.001);
        let d = geo.nnz() as f64 / geo.nrows as f64;
        assert!((12.0..22.0).contains(&d), "geo density {d}");
    }

    #[test]
    fn scale_controls_rows() {
        let small = g3_circuit_like(0.001);
        let large = g3_circuit_like(0.004);
        assert!(large.nrows > 2 * small.nrows);
        // Within 30% of target.
        let target = PAPER_MATRICES[0].paper_rows as f64 * 0.004;
        let ratio = large.nrows as f64 / target;
        assert!((0.7..1.3).contains(&ratio), "rows {} target {target}", large.nrows);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(geo_1438_like(0.0005), geo_1438_like(0.0005));
        assert_eq!(hook_1498_like(0.0005), hook_1498_like(0.0005));
        // Geo and Hook differ despite the same construction.
        assert_ne!(geo_1438_like(0.0005), hook_1498_like(0.0005));
    }

    #[test]
    #[should_panic(expected = "unknown benchmark matrix")]
    fn unknown_name_panics() {
        by_name("nd24k", 0.01);
    }
}
