//! Blockwise halo-exchange reordering — the paper's §IV.
//!
//! After row-wise decomposition, a tile's rows reference columns owned by
//! other tiles. Those *halo* values must be refreshed after every update of
//! the distributed vector. On cached architectures one reorders for
//! locality; the IPU is cacheless, so the paper reorders for
//! *communication* instead:
//!
//! 1. identify **separator** cells (owned here, needed by neighbours) and
//!    the exact set of neighbouring tiles requiring each;
//! 2. group separator cells with identical neighbour-tile sets into
//!    **regions**;
//! 3. create the corresponding **halo regions** on the consumers;
//! 4. give each separator region and all of its halo copies the *same
//!    internal cell order*.
//!
//! The payoff: a halo exchange is one contiguous block copy per region —
//! broadcast to every consumer over the all-to-all fabric — with no
//! per-cell communication instructions and no local reordering on either
//! side.
//!
//! The resulting per-tile memory layout of a distributed vector is
//! `[interior cells | separator regions… | halo regions…]` (paper Fig 3b).

use std::collections::HashMap;

use crate::formats::CsrMatrix;
use crate::partition::Partition;

/// Classification of a cell from one tile's perspective (paper Fig 3a).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellKind {
    /// Owned and referenced only by the owner.
    Interior,
    /// Owned here, needed by at least one neighbour.
    Separator,
    /// Owned elsewhere, needed here.
    Halo,
    /// Not referenced by this tile at all.
    Foreign,
}

/// A separator region and its halo copies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Region {
    /// Tile owning the separator cells.
    pub owner: usize,
    /// Tiles holding a halo copy (sorted, never contains `owner`).
    pub consumers: Vec<usize>,
    /// Global row ids in the region's *consistent order* (ascending global
    /// id — identical at the source and every destination).
    pub cells: Vec<usize>,
    /// Start of the region in the owner's local vector layout.
    pub src_start: usize,
    /// Start of the halo copy in each consumer's local layout
    /// (parallel to `consumers`).
    pub dst_starts: Vec<usize>,
}

impl Region {
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Per-tile memory layout of a distributed vector.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TileLayout {
    /// Global rows owned by the tile, in local order:
    /// interior first, then separator regions back-to-back.
    pub owned: Vec<usize>,
    /// How many of `owned` are interior cells.
    pub num_interior: usize,
    /// Global rows of the halo cells, in local order (region by region);
    /// local index of `halo[k]` is `owned.len() + k`.
    pub halo: Vec<usize>,
}

impl TileLayout {
    /// Total local vector length (owned + halo slots).
    pub fn local_len(&self) -> usize {
        self.owned.len() + self.halo.len()
    }
}

/// The tile-local submatrix: this tile's rows with columns renumbered into
/// its local vector layout.
#[derive(Clone, Debug, PartialEq)]
pub struct LocalMatrix {
    /// `a.nrows == layout.owned.len()`, `a.ncols == layout.local_len()`.
    pub a: CsrMatrix,
}

/// The complete halo decomposition of a matrix over a partition.
#[derive(Clone, Debug)]
pub struct HaloDecomposition {
    pub layouts: Vec<TileLayout>,
    pub regions: Vec<Region>,
    /// `owner_slot[row] = (tile, local index)` of the owned copy.
    pub owner_slot: Vec<(u32, u32)>,
}

impl HaloDecomposition {
    /// Build the decomposition following the paper's four steps.
    pub fn build(a: &CsrMatrix, part: &Partition) -> Self {
        assert_eq!(a.nrows, part.num_rows());
        assert_eq!(a.nrows, a.ncols, "halo decomposition requires a square matrix");
        let num_tiles = part.num_parts();

        // Step 1: for every cell, the set of foreign tiles that reference
        // it. Row i referencing column j means owner(i) needs cell j.
        let mut consumers: Vec<Vec<u32>> = vec![Vec::new(); a.nrows];
        for i in 0..a.nrows {
            let ti = part.owner[i];
            let (cols, _) = a.row(i);
            for &c in cols {
                let j = c as usize;
                let tj = part.owner[j];
                if ti != tj && !consumers[j].contains(&ti) {
                    consumers[j].push(ti);
                }
            }
        }
        for c in &mut consumers {
            c.sort_unstable();
        }

        // Step 2: group separator cells by (owner, consumer set).
        // Ascending global id within a group is the consistent order.
        let mut groups: HashMap<(u32, Vec<u32>), Vec<usize>> = HashMap::new();
        for j in 0..a.nrows {
            if !consumers[j].is_empty() {
                groups.entry((part.owner[j], consumers[j].clone())).or_default().push(j);
            }
        }
        let mut keyed: Vec<((u32, Vec<u32>), Vec<usize>)> = groups.into_iter().collect();
        // Deterministic region order: by owner, then consumer set.
        keyed.sort_by(|x, y| x.0.cmp(&y.0));
        for (_, cells) in &mut keyed {
            cells.sort_unstable();
        }

        // Step 3+4: build per-tile layouts. Owned part: interior cells
        // (ascending), then this tile's separator regions in region order.
        let mut is_separator = vec![false; a.nrows];
        for (_, cells) in &keyed {
            for &c in cells {
                is_separator[c] = true;
            }
        }
        let mut layouts: Vec<TileLayout> = (0..num_tiles)
            .map(|t| {
                let interior: Vec<usize> =
                    part.rows_of(t).iter().copied().filter(|&r| !is_separator[r]).collect();
                TileLayout { num_interior: interior.len(), owned: interior, halo: Vec::new() }
            })
            .collect();

        let mut regions: Vec<Region> = Vec::with_capacity(keyed.len());
        for ((owner, cons), cells) in keyed {
            let owner = owner as usize;
            let src_start = layouts[owner].owned.len();
            layouts[owner].owned.extend_from_slice(&cells);
            let mut dst_starts = Vec::with_capacity(cons.len());
            for &t in &cons {
                let t = t as usize;
                // Halo regions land after the owned part; record the offset
                // within the halo list for now, fix up below.
                dst_starts.push(layouts[t].halo.len());
                layouts[t].halo.extend_from_slice(&cells);
            }
            regions.push(Region {
                owner,
                consumers: cons.iter().map(|&t| t as usize).collect(),
                cells,
                src_start,
                dst_starts,
            });
        }
        // Fix up halo offsets now that owned lengths are final.
        for r in &mut regions {
            for (k, &t) in r.consumers.iter().enumerate() {
                r.dst_starts[k] += layouts[t].owned.len();
            }
        }

        // Owner slots for gather/scatter.
        let mut owner_slot = vec![(0u32, 0u32); a.nrows];
        for (t, layout) in layouts.iter().enumerate() {
            for (local, &row) in layout.owned.iter().enumerate() {
                owner_slot[row] = (t as u32, local as u32);
            }
        }

        HaloDecomposition { layouts, regions, owner_slot }
    }

    pub fn num_tiles(&self) -> usize {
        self.layouts.len()
    }

    /// Cell classification from `tile`'s perspective.
    pub fn cell_kind(&self, tile: usize, row: usize) -> CellKind {
        let l = &self.layouts[tile];
        if self.owner_slot[row].0 as usize == tile {
            let local = self.owner_slot[row].1 as usize;
            if local < l.num_interior {
                CellKind::Interior
            } else {
                CellKind::Separator
            }
        } else if l.halo.contains(&row) {
            CellKind::Halo
        } else {
            CellKind::Foreign
        }
    }

    /// Build the tile-local submatrices: each tile's rows (in local owned
    /// order) with columns renumbered into the tile's local vector layout.
    /// Panics if a row references a column that is neither owned nor in the
    /// halo — impossible by construction of the decomposition.
    pub fn local_matrices(&self, a: &CsrMatrix) -> Vec<LocalMatrix> {
        self.layouts
            .iter()
            .map(|layout| {
                let mut col_map: HashMap<usize, u32> = HashMap::with_capacity(layout.local_len());
                for (local, &row) in layout.owned.iter().enumerate() {
                    col_map.insert(row, local as u32);
                }
                for (k, &row) in layout.halo.iter().enumerate() {
                    col_map.insert(row, (layout.owned.len() + k) as u32);
                }
                let mut row_ptr = Vec::with_capacity(layout.owned.len() + 1);
                let mut col_idx = Vec::new();
                let mut values = Vec::new();
                row_ptr.push(0);
                for &row in &layout.owned {
                    let (cols, vals) = a.row(row);
                    let mut entries: Vec<(u32, f64)> = cols
                        .iter()
                        .zip(vals)
                        .map(|(c, v)| {
                            let lc = *col_map
                                .get(&(*c as usize))
                                .expect("referenced column neither owned nor halo");
                            (lc, *v)
                        })
                        .collect();
                    entries.sort_unstable_by_key(|e| e.0);
                    for (c, v) in entries {
                        col_idx.push(c);
                        values.push(v);
                    }
                    row_ptr.push(col_idx.len());
                }
                LocalMatrix {
                    a: CsrMatrix {
                        nrows: layout.owned.len(),
                        ncols: layout.local_len(),
                        row_ptr,
                        col_idx,
                        values,
                    },
                }
            })
            .collect()
    }

    /// Scatter a global vector into per-tile local vectors (owned + halo
    /// slots filled).
    pub fn scatter(&self, global: &[f64]) -> Vec<Vec<f64>> {
        self.layouts
            .iter()
            .map(|l| {
                let mut v = Vec::with_capacity(l.local_len());
                v.extend(l.owned.iter().map(|&r| global[r]));
                v.extend(l.halo.iter().map(|&r| global[r]));
                v
            })
            .collect()
    }

    /// Gather per-tile local vectors (owned parts only) back into a global
    /// vector.
    pub fn gather(&self, locals: &[Vec<f64>]) -> Vec<f64> {
        let mut global = vec![0.0; self.owner_slot.len()];
        for (t, l) in self.layouts.iter().enumerate() {
            for (local, &row) in l.owned.iter().enumerate() {
                global[row] = locals[t][local];
            }
        }
        global
    }

    /// Perform a halo exchange on host-side local vectors: copy each
    /// separator region from its owner into every consumer's halo slots.
    /// Blockwise by construction — the inner loop is a contiguous copy.
    pub fn exchange(&self, locals: &mut [Vec<f64>]) {
        for r in &self.regions {
            for (k, &t) in r.consumers.iter().enumerate() {
                let (src_tile, rest) = if r.owner < t {
                    let (a, b) = locals.split_at_mut(t);
                    (&a[r.owner], &mut b[0])
                } else {
                    let (a, b) = locals.split_at_mut(r.owner);
                    (&b[0], &mut a[t])
                };
                let src = &src_tile[r.src_start..r.src_start + r.len()];
                let dst = &mut rest[r.dst_starts[k]..r.dst_starts[k] + r.len()];
                dst.copy_from_slice(src);
            }
        }
    }

    /// Total halo communication volume in elements (sum over regions of
    /// region size × number of consumers).
    pub fn exchange_volume(&self) -> usize {
        self.regions.iter().map(|r| r.len() * r.consumers.len()).sum()
    }

    /// Number of blockwise copies in one exchange (regions × consumers) —
    /// versus `exchange_volume()` copies for the naive per-cell scheme.
    pub fn num_block_copies(&self) -> usize {
        self.regions.iter().map(|r| r.consumers.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{poisson_2d_5pt, poisson_3d_7pt, Grid3};

    /// The paper's Fig 3 setting: an 8x8 mesh on four tiles (2x2 boxes).
    fn fig3() -> (CsrMatrix, Partition, HaloDecomposition) {
        let a = poisson_2d_5pt(8, 8, 1.0);
        let p = Partition::grid_2d(8, 8, 2, 2);
        let h = HaloDecomposition::build(&a, &p);
        (a, p, h)
    }

    #[test]
    fn fig3_cell_classification() {
        let (_, p, h) = fig3();
        // Tile 0 owns the lower-left 4x4 box (rows y<4, x<4).
        // Cell (0,0) = row 0: interior. Cell (3,3) = row 27: separator.
        assert_eq!(p.owner_of(0), 0);
        assert_eq!(h.cell_kind(0, 0), CellKind::Interior);
        let idx = |x: usize, y: usize| y * 8 + x;
        assert_eq!(h.cell_kind(0, idx(3, 3)), CellKind::Separator);
        assert_eq!(h.cell_kind(0, idx(3, 0)), CellKind::Separator); // right edge
        assert_eq!(h.cell_kind(0, idx(4, 0)), CellKind::Halo); // tile 1's left edge
        assert_eq!(h.cell_kind(0, idx(7, 7)), CellKind::Foreign); // far corner
    }

    #[test]
    fn fig3_region_structure() {
        let (_, _, h) = fig3();
        // With a 5-point stencil, each tile's separator cells split into:
        // right-edge region {consumer: right neighbour} (4 cells),
        // top-edge region {consumer: top neighbour} (4 cells).
        // The corner cell is in BOTH edge sets?? No: 5-point has no
        // diagonal neighbours, so corner cell (3,3) of tile 0 is needed by
        // tile 1 (via (4,3)) and tile 2 (via (3,4)) -> its own region with
        // two consumers.
        let tile0: Vec<&Region> = h.regions.iter().filter(|r| r.owner == 0).collect();
        assert_eq!(tile0.len(), 3, "{tile0:#?}");
        let mut sizes: Vec<(usize, Vec<usize>)> =
            tile0.iter().map(|r| (r.len(), r.consumers.clone())).collect();
        sizes.sort();
        assert_eq!(sizes[0], (1, vec![1, 2])); // corner broadcast region
        assert_eq!(sizes[1], (3, vec![1]));
        assert_eq!(sizes[2], (3, vec![2]));
        // Total: 4 tiles x 3 regions.
        assert_eq!(h.regions.len(), 12);
    }

    #[test]
    fn layout_is_interior_then_separators_then_halo() {
        let (_, _, h) = fig3();
        let l = &h.layouts[0];
        assert_eq!(l.owned.len(), 16);
        assert_eq!(l.num_interior, 9); // 3x3 interior of a 4x4 box
                                       // From each of the two neighbours: a 3-cell edge region plus that
                                       // neighbour's own corner-broadcast region.
        assert_eq!(l.halo.len(), 8);
        assert_eq!(l.local_len(), 24);
    }

    #[test]
    fn consistent_ordering_between_src_and_dst() {
        let (_, _, h) = fig3();
        for r in &h.regions {
            // Source slice in the owner's layout holds exactly r.cells in
            // order.
            let owner = &h.layouts[r.owner];
            assert_eq!(&owner.owned[r.src_start..r.src_start + r.len()], &r.cells[..]);
            // Every destination slice holds the same cells in the same
            // order.
            for (k, &t) in r.consumers.iter().enumerate() {
                let cons = &h.layouts[t];
                let off = r.dst_starts[k] - cons.owned.len();
                assert_eq!(&cons.halo[off..off + r.len()], &r.cells[..]);
            }
        }
    }

    #[test]
    fn exchange_then_local_spmv_matches_global() {
        let (a, _, h) = fig3();
        let x: Vec<f64> = (0..a.nrows).map(|i| (i as f64 * 0.37).sin()).collect();
        let want = a.spmv_alloc(&x);

        let locals_mats = h.local_matrices(&a);
        // Start with owned values only; halo slots stale.
        let mut locals: Vec<Vec<f64>> = h
            .layouts
            .iter()
            .map(|l| {
                let mut v: Vec<f64> = l.owned.iter().map(|&r| x[r]).collect();
                v.extend(std::iter::repeat(f64::NAN).take(l.halo.len()));
                v
            })
            .collect();
        h.exchange(&mut locals);
        let mut ys: Vec<Vec<f64>> = Vec::new();
        for (t, lm) in locals_mats.iter().enumerate() {
            let mut y = vec![0.0; lm.a.nrows];
            lm.a.spmv(&locals[t], &mut y);
            ys.push(y);
        }
        let got = h.gather(&ys);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12, "{g} vs {w}");
        }
    }

    #[test]
    fn scatter_gather_roundtrip() {
        let a = poisson_3d_7pt(6, 6, 6);
        let p = Partition::grid_3d(Grid3 { nx: 6, ny: 6, nz: 6 }, 2, 2, 2);
        let h = HaloDecomposition::build(&a, &p);
        let x: Vec<f64> = (0..a.nrows).map(|i| i as f64).collect();
        let locals = h.scatter(&x);
        // Halo slots must hold the owner's values after scatter.
        for (t, l) in h.layouts.iter().enumerate() {
            for (k, &row) in l.halo.iter().enumerate() {
                assert_eq!(locals[t][l.owned.len() + k], x[row]);
            }
        }
        assert_eq!(h.gather(&locals), x);
    }

    #[test]
    fn blockwise_far_fewer_copies_than_per_cell() {
        let a = poisson_3d_7pt(12, 12, 12);
        let p = Partition::grid_3d(Grid3 { nx: 12, ny: 12, nz: 12 }, 2, 2, 2);
        let h = HaloDecomposition::build(&a, &p);
        // A 6x6x6 box face has 36 separator cells -> regions collapse the
        // per-cell copies by several times (faces dominate; edge strips are
        // smaller regions).
        assert!(
            h.num_block_copies() * 5 <= h.exchange_volume(),
            "copies {} volume {}",
            h.num_block_copies(),
            h.exchange_volume()
        );
    }

    #[test]
    fn single_tile_has_no_regions() {
        let a = poisson_2d_5pt(5, 5, 1.0);
        let p = Partition::contiguous(25, 1);
        let h = HaloDecomposition::build(&a, &p);
        assert!(h.regions.is_empty());
        assert_eq!(h.layouts[0].num_interior, 25);
        assert_eq!(h.exchange_volume(), 0);
    }

    #[test]
    fn every_halo_cell_is_someones_separator() {
        let (_, p, h) = fig3();
        for (t, l) in h.layouts.iter().enumerate() {
            for &row in &l.halo {
                let owner = p.owner_of(row);
                assert_ne!(owner, t);
                assert_eq!(h.cell_kind(owner, row), CellKind::Separator);
            }
        }
    }
}
