//! MatrixMarket coordinate-format IO.
//!
//! Supports the subset the SuiteSparse collection uses for the paper's
//! benchmark matrices: `matrix coordinate real {general|symmetric}` and
//! `pattern` variants (pattern entries get value 1.0). Symmetric files
//! store only the lower triangle; the reader mirrors it.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::formats::{CooMatrix, CsrMatrix};

/// Error from MatrixMarket parsing.
#[derive(Debug)]
pub enum MmError {
    Io(io::Error),
    Parse(String),
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "io error: {e}"),
            MmError::Parse(m) => write!(f, "matrix market parse error: {m}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<io::Error> for MmError {
    fn from(e: io::Error) -> Self {
        MmError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MmError {
    MmError::Parse(msg.into())
}

/// Read a MatrixMarket matrix from any reader.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CsrMatrix, MmError> {
    let mut lines = BufReader::new(reader).lines();

    let header = lines.next().ok_or_else(|| parse_err("empty file"))??;
    let h: Vec<&str> = header.split_whitespace().collect();
    if h.len() < 5 || !h[0].eq_ignore_ascii_case("%%MatrixMarket") {
        return Err(parse_err(format!("bad header: {header}")));
    }
    if !h[1].eq_ignore_ascii_case("matrix") || !h[2].eq_ignore_ascii_case("coordinate") {
        return Err(parse_err("only 'matrix coordinate' is supported"));
    }
    let field = h[3].to_ascii_lowercase();
    if !matches!(field.as_str(), "real" | "integer" | "pattern") {
        return Err(parse_err(format!("unsupported field type: {field}")));
    }
    let symmetry = h[4].to_ascii_lowercase();
    let symmetric = match symmetry.as_str() {
        "general" => false,
        "symmetric" => true,
        other => return Err(parse_err(format!("unsupported symmetry: {other}"))),
    };
    let pattern = field == "pattern";

    // Skip comments, find the size line.
    let size_line = loop {
        let line = lines.next().ok_or_else(|| parse_err("missing size line"))??;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        break line;
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| parse_err(format!("bad size line: {size_line}"))))
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(parse_err(format!("bad size line: {size_line}")));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = CooMatrix::new(nrows, ncols);
    coo.entries.reserve(if symmetric { 2 * nnz } else { nnz });
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let r: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(format!("bad entry: {t}")))?;
        let c: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(format!("bad entry: {t}")))?;
        let v: f64 = if pattern {
            1.0
        } else {
            it.next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| parse_err(format!("bad entry: {t}")))?
        };
        if r == 0 || c == 0 || r > nrows || c > ncols {
            return Err(parse_err(format!("entry out of bounds: {t}")));
        }
        // MatrixMarket is 1-based.
        coo.push(r - 1, c - 1, v);
        if symmetric && r != c {
            coo.push(c - 1, r - 1, v);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(format!("expected {nnz} entries, found {seen}")));
    }
    Ok(coo.to_csr())
}

/// Read a MatrixMarket file from disk.
pub fn read_matrix_market_file(path: impl AsRef<Path>) -> Result<CsrMatrix, MmError> {
    read_matrix_market(std::fs::File::open(path)?)
}

/// Write a matrix in `matrix coordinate real general` format.
pub fn write_matrix_market<W: Write>(w: &mut W, a: &CsrMatrix) -> io::Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by graphene-sparse")?;
    writeln!(w, "{} {} {}", a.nrows, a.ncols, a.nnz())?;
    for i in 0..a.nrows {
        let (cols, vals) = a.row(i);
        for (c, v) in cols.iter().zip(vals) {
            writeln!(w, "{} {} {:.17e}", i + 1, *c as usize + 1, v)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_general() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 2.5);
        coo.push(1, 2, -1.25);
        coo.push(2, 1, 7.0);
        let a = coo.to_csr();
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &a).unwrap();
        let b = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn symmetric_mirrors_lower_triangle() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    % comment\n\
                    2 2 3\n\
                    1 1 4.0\n\
                    2 1 -1.0\n\
                    2 2 4.0\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert!(a.is_symmetric(1e-15));
    }

    #[test]
    fn pattern_entries_are_one() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 2 2\n\
                    1 2\n\
                    2 1\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(1, 0), 1.0);
    }

    #[test]
    fn file_roundtrip() {
        let a = crate::gen::poisson_2d_5pt(6, 5, 1.0);
        let path = std::env::temp_dir().join("graphene_sparse_io_test.mtx");
        {
            let mut f = std::fs::File::create(&path).unwrap();
            write_matrix_market(&mut f, &a).unwrap();
        }
        let b = read_matrix_market_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(a, b);
    }

    #[test]
    fn missing_file_is_io_error() {
        match read_matrix_market_file("/nonexistent/graphene.mtx") {
            Err(MmError::Io(_)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_bad_headers() {
        assert!(read_matrix_market("garbage\n1 1 0\n".as_bytes()).is_err());
        assert!(read_matrix_market("%%MatrixMarket matrix array real general\n1 1 0\n".as_bytes())
            .is_err());
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate complex general\n1 1 0\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn rejects_out_of_bounds_and_count_mismatch() {
        let oob = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(oob.as_bytes()).is_err());
        let short = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market(short.as_bytes()).is_err());
    }
}
