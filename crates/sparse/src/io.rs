//! MatrixMarket coordinate-format IO.
//!
//! Supports the subset the SuiteSparse collection uses for the paper's
//! benchmark matrices: `matrix coordinate real
//! {general|symmetric|skew-symmetric}` and `pattern` variants (pattern
//! entries get value 1.0). Symmetric files store only the lower triangle
//! (diagonal included) and the reader mirrors it; skew-symmetric files
//! store only the *strictly* lower triangle and the reader mirrors with
//! negation. Entries in the upper triangle of a symmetric/skew file are
//! rejected: mirroring them would create duplicates that `to_csr` then
//! sums, silently corrupting the matrix.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::formats::{CooMatrix, CsrMatrix};

/// Error from MatrixMarket parsing.
#[derive(Debug)]
pub enum MmError {
    Io(io::Error),
    Parse(String),
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "io error: {e}"),
            MmError::Parse(m) => write!(f, "matrix market parse error: {m}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<io::Error> for MmError {
    fn from(e: io::Error) -> Self {
        MmError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MmError {
    MmError::Parse(msg.into())
}

/// Symmetry qualifier of a MatrixMarket file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MmSymmetry {
    /// Every entry stored explicitly.
    General,
    /// Lower triangle stored (diagonal included); `a[j][i] = a[i][j]`.
    Symmetric,
    /// Strictly lower triangle stored; `a[j][i] = -a[i][j]`, zero diagonal.
    SkewSymmetric,
}

impl MmSymmetry {
    fn header_name(self) -> &'static str {
        match self {
            MmSymmetry::General => "general",
            MmSymmetry::Symmetric => "symmetric",
            MmSymmetry::SkewSymmetric => "skew-symmetric",
        }
    }
}

/// Read a MatrixMarket matrix from any reader.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CsrMatrix, MmError> {
    let mut lines = BufReader::new(reader).lines();

    let header = lines.next().ok_or_else(|| parse_err("empty file"))??;
    let h: Vec<&str> = header.split_whitespace().collect();
    if h.len() < 5 || !h[0].eq_ignore_ascii_case("%%MatrixMarket") {
        return Err(parse_err(format!("bad header: {header}")));
    }
    if !h[1].eq_ignore_ascii_case("matrix") || !h[2].eq_ignore_ascii_case("coordinate") {
        return Err(parse_err("only 'matrix coordinate' is supported"));
    }
    let field = h[3].to_ascii_lowercase();
    if !matches!(field.as_str(), "real" | "integer" | "pattern") {
        return Err(parse_err(format!("unsupported field type: {field}")));
    }
    let symmetry = h[4].to_ascii_lowercase();
    let symmetry = match symmetry.as_str() {
        "general" => MmSymmetry::General,
        "symmetric" => MmSymmetry::Symmetric,
        "skew-symmetric" => MmSymmetry::SkewSymmetric,
        other => return Err(parse_err(format!("unsupported symmetry: {other}"))),
    };
    let pattern = field == "pattern";
    if pattern && symmetry == MmSymmetry::SkewSymmetric {
        // A pattern has no signs to negate; the MM spec only allows
        // pattern with general/symmetric.
        return Err(parse_err("pattern matrices cannot be skew-symmetric"));
    }

    // Skip comments, find the size line.
    let size_line = loop {
        let line = lines.next().ok_or_else(|| parse_err("missing size line"))??;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        break line;
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| parse_err(format!("bad size line: {size_line}"))))
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(parse_err(format!("bad size line: {size_line}")));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = CooMatrix::new(nrows, ncols);
    let mirrored = symmetry != MmSymmetry::General;
    coo.entries.reserve(if mirrored { 2 * nnz } else { nnz });
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let r: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(format!("bad entry: {t}")))?;
        let c: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(format!("bad entry: {t}")))?;
        let v: f64 = if pattern {
            1.0
        } else {
            it.next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| parse_err(format!("bad entry: {t}")))?
        };
        if r == 0 || c == 0 || r > nrows || c > ncols {
            return Err(parse_err(format!("entry out of bounds: {t}")));
        }
        match symmetry {
            MmSymmetry::General => {}
            // Symmetric storage is *lower-triangle only*. An upper-triangle
            // entry would be mirrored into a duplicate of a stored lower
            // entry, which `to_csr` then sums — silently corrupting the
            // matrix — so it is a hard parse error.
            MmSymmetry::Symmetric => {
                if r < c {
                    return Err(parse_err(format!(
                        "symmetric file stores the lower triangle only; upper-triangle entry: {t}"
                    )));
                }
            }
            // Skew-symmetric storage is *strictly* lower: the diagonal of a
            // skew-symmetric matrix is identically zero and must not be
            // stored.
            MmSymmetry::SkewSymmetric => {
                if r <= c {
                    return Err(parse_err(format!(
                        "skew-symmetric file stores the strictly lower triangle only: {t}"
                    )));
                }
            }
        }
        // MatrixMarket is 1-based.
        coo.push(r - 1, c - 1, v);
        if r != c {
            match symmetry {
                MmSymmetry::General => {}
                MmSymmetry::Symmetric => coo.push(c - 1, r - 1, v),
                MmSymmetry::SkewSymmetric => coo.push(c - 1, r - 1, -v),
            }
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(format!("expected {nnz} entries, found {seen}")));
    }
    Ok(coo.to_csr())
}

/// Read a MatrixMarket file from disk.
pub fn read_matrix_market_file(path: impl AsRef<Path>) -> Result<CsrMatrix, MmError> {
    read_matrix_market(std::fs::File::open(path)?)
}

/// Write a matrix in `matrix coordinate real general` format.
pub fn write_matrix_market<W: Write>(w: &mut W, a: &CsrMatrix) -> io::Result<()> {
    write_matrix_market_with(w, a, MmSymmetry::General)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))
}

/// Write a matrix in `matrix coordinate real <symmetry>` format.
///
/// For [`MmSymmetry::Symmetric`] only the lower triangle (diagonal
/// included) is stored; for [`MmSymmetry::SkewSymmetric`] only the
/// strictly lower triangle. The matrix is validated against the requested
/// symmetry first so that no information is silently dropped.
pub fn write_matrix_market_with<W: Write>(
    w: &mut W,
    a: &CsrMatrix,
    symmetry: MmSymmetry,
) -> Result<(), MmError> {
    if symmetry != MmSymmetry::General {
        if a.nrows != a.ncols {
            return Err(parse_err("symmetric output requires a square matrix"));
        }
        let skew = symmetry == MmSymmetry::SkewSymmetric;
        for i in 0..a.nrows {
            let (cols, vals) = a.row(i);
            for (c, v) in cols.iter().zip(vals) {
                let (j, v) = (*c as usize, *v);
                let mirror = if skew { -a.get(j, i) } else { a.get(j, i) };
                if mirror != v {
                    return Err(parse_err(format!(
                        "matrix is not {}: a[{i}][{j}] = {v} vs mirror {mirror}",
                        symmetry.header_name()
                    )));
                }
                if skew && i == j && v != 0.0 {
                    return Err(parse_err(format!(
                        "skew-symmetric matrix has nonzero diagonal a[{i}][{i}] = {v}"
                    )));
                }
            }
        }
    }
    let keep = |i: usize, j: usize| match symmetry {
        MmSymmetry::General => true,
        MmSymmetry::Symmetric => i >= j,
        MmSymmetry::SkewSymmetric => i > j,
    };
    let mut stored = 0usize;
    for i in 0..a.nrows {
        let (cols, _) = a.row(i);
        stored += cols.iter().filter(|&&c| keep(i, c as usize)).count();
    }
    writeln!(w, "%%MatrixMarket matrix coordinate real {}", symmetry.header_name())?;
    writeln!(w, "% written by graphene-sparse")?;
    writeln!(w, "{} {} {}", a.nrows, a.ncols, stored)?;
    for i in 0..a.nrows {
        let (cols, vals) = a.row(i);
        for (c, v) in cols.iter().zip(vals) {
            if keep(i, *c as usize) {
                writeln!(w, "{} {} {:.17e}", i + 1, *c as usize + 1, v)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_general() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 2.5);
        coo.push(1, 2, -1.25);
        coo.push(2, 1, 7.0);
        let a = coo.to_csr();
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &a).unwrap();
        let b = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn symmetric_mirrors_lower_triangle() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    % comment\n\
                    2 2 3\n\
                    1 1 4.0\n\
                    2 1 -1.0\n\
                    2 2 4.0\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert!(a.is_symmetric(1e-15));
    }

    #[test]
    fn symmetric_rejects_upper_triangle_entry() {
        // Regression: an upper-triangle entry in a symmetric file used to
        // be accepted and mirrored into a duplicate that to_csr summed,
        // corrupting the matrix (here the off-diagonal band would become
        // -2 instead of -1). It must be a parse error.
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    2 2 3\n\
                    1 1 4.0\n\
                    1 2 -1.0\n\
                    2 2 4.0\n";
        match read_matrix_market(text.as_bytes()) {
            Err(MmError::Parse(m)) => assert!(m.contains("upper-triangle"), "{m}"),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn skew_symmetric_mirrors_with_negation() {
        let text = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
                    3 3 2\n\
                    2 1 5.0\n\
                    3 2 -2.5\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.get(1, 0), 5.0);
        assert_eq!(a.get(0, 1), -5.0);
        assert_eq!(a.get(2, 1), -2.5);
        assert_eq!(a.get(1, 2), 2.5);
        assert_eq!(a.get(0, 0), 0.0);
    }

    #[test]
    fn skew_symmetric_rejects_diagonal_and_upper() {
        let diag = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
                    2 2 1\n\
                    1 1 1.0\n";
        assert!(read_matrix_market(diag.as_bytes()).is_err());
        let upper = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
                     2 2 1\n\
                     1 2 1.0\n";
        assert!(read_matrix_market(upper.as_bytes()).is_err());
        // And a pattern cannot be skew-symmetric.
        let pat = "%%MatrixMarket matrix coordinate pattern skew-symmetric\n\
                   2 2 1\n\
                   2 1\n";
        assert!(read_matrix_market(pat.as_bytes()).is_err());
    }

    #[test]
    fn symmetric_roundtrip_via_writer() {
        let a = crate::gen::poisson_2d_5pt(5, 4, 1.0);
        assert!(a.is_symmetric(0.0));
        let mut buf = Vec::new();
        write_matrix_market_with(&mut buf, &a, MmSymmetry::Symmetric).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("%%MatrixMarket matrix coordinate real symmetric"));
        let b = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn skew_symmetric_roundtrip_via_writer() {
        let mut coo = CooMatrix::new(4, 4);
        for (i, j, v) in [(1usize, 0usize, 3.0), (2, 0, -1.5), (3, 2, 0.25)] {
            coo.push(i, j, v);
            coo.push(j, i, -v);
        }
        let a = coo.to_csr();
        let mut buf = Vec::new();
        write_matrix_market_with(&mut buf, &a, MmSymmetry::SkewSymmetric).unwrap();
        let b = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn writer_validates_symmetry() {
        // Not symmetric: writing as symmetric must fail, not drop data.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0);
        let a = coo.to_csr();
        assert!(write_matrix_market_with(&mut Vec::new(), &a, MmSymmetry::Symmetric).is_err());
        assert!(write_matrix_market_with(&mut Vec::new(), &a, MmSymmetry::SkewSymmetric).is_err());
        // Symmetric but with a nonzero diagonal: fine as symmetric,
        // invalid as skew-symmetric.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 2.0);
        let d = coo.to_csr();
        assert!(write_matrix_market_with(&mut Vec::new(), &d, MmSymmetry::Symmetric).is_ok());
        assert!(write_matrix_market_with(&mut Vec::new(), &d, MmSymmetry::SkewSymmetric).is_err());
    }

    #[test]
    fn pattern_entries_are_one() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 2 2\n\
                    1 2\n\
                    2 1\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(1, 0), 1.0);
    }

    #[test]
    fn file_roundtrip() {
        let a = crate::gen::poisson_2d_5pt(6, 5, 1.0);
        let path = std::env::temp_dir().join("graphene_sparse_io_test.mtx");
        {
            let mut f = std::fs::File::create(&path).unwrap();
            write_matrix_market(&mut f, &a).unwrap();
        }
        let b = read_matrix_market_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(a, b);
    }

    #[test]
    fn missing_file_is_io_error() {
        match read_matrix_market_file("/nonexistent/graphene.mtx") {
            Err(MmError::Io(_)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_bad_headers() {
        assert!(read_matrix_market("garbage\n1 1 0\n".as_bytes()).is_err());
        assert!(read_matrix_market("%%MatrixMarket matrix array real general\n1 1 0\n".as_bytes())
            .is_err());
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate complex general\n1 1 0\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn rejects_out_of_bounds_and_count_mismatch() {
        let oob = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(oob.as_bytes()).is_err());
        let short = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market(short.as_bytes()).is_err());
    }
}
