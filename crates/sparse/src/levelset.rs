//! Level-set scheduling (§V-A).
//!
//! Sequential solvers like Gauss-Seidel and the ILU substitution sweep rows
//! in order, each row depending on already-updated values via the strictly
//! lower (forward sweep) or strictly upper (backward sweep) triangle. The
//! dependency graph is a DAG; clustering it into *levels* — row r's level =
//! 1 + max level of the rows it depends on — lets all rows of one level run
//! in parallel (here: across a tile's six worker threads) while preserving
//! the sequential method's exact result and convergence rate.

use crate::formats::CsrMatrix;

/// Which triangle carries the dependencies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sweep {
    /// Dependencies in the strictly lower triangle (forward substitution /
    /// forward Gauss-Seidel).
    Forward,
    /// Dependencies in the strictly upper triangle (backward substitution).
    Backward,
}

/// The computed level structure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LevelSets {
    /// `levels[k]` = rows in level k, ascending. Processing levels in order
    /// reproduces the sequential sweep exactly.
    pub levels: Vec<Vec<usize>>,
    /// `level_of[row]` = level index.
    pub level_of: Vec<u32>,
    pub sweep: Sweep,
}

impl LevelSets {
    /// Compute levels for a sweep over `a` (typically a tile-local matrix).
    /// Only columns `< a.nrows` count as dependencies — halo columns (≥
    /// nrows in the local layout) are frozen inputs, mirroring the paper's
    /// observation that tile-local (D)ILU "completely disregards halo
    /// values".
    pub fn analyze(a: &CsrMatrix, sweep: Sweep) -> Self {
        let n = a.nrows;
        let mut level_of = vec![0u32; n];
        let mut max_level = 0u32;
        match sweep {
            Sweep::Forward => {
                for i in 0..n {
                    let (cols, _) = a.row(i);
                    let mut lvl = 0u32;
                    for &c in cols {
                        let j = c as usize;
                        if j < i {
                            lvl = lvl.max(level_of[j] + 1);
                        }
                    }
                    level_of[i] = lvl;
                    max_level = max_level.max(lvl);
                }
            }
            Sweep::Backward => {
                for i in (0..n).rev() {
                    let (cols, _) = a.row(i);
                    let mut lvl = 0u32;
                    for &c in cols {
                        let j = c as usize;
                        if j > i && j < n {
                            lvl = lvl.max(level_of[j] + 1);
                        }
                    }
                    level_of[i] = lvl;
                    max_level = max_level.max(lvl);
                }
            }
        }
        let mut levels = vec![Vec::new(); max_level as usize + 1];
        for i in 0..n {
            levels[level_of[i] as usize].push(i);
        }
        if n == 0 {
            levels.clear();
        }
        LevelSets { levels, level_of, sweep }
    }

    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Mean rows per level — the parallelism available to the six workers.
    pub fn mean_parallelism(&self) -> f64 {
        if self.levels.is_empty() {
            return 0.0;
        }
        self.level_of.len() as f64 / self.levels.len() as f64
    }

    /// Verify the defining invariant: every dependency of a row lies in a
    /// strictly earlier level.
    pub fn validate(&self, a: &CsrMatrix) -> bool {
        let n = a.nrows;
        for i in 0..n {
            let (cols, _) = a.row(i);
            for &c in cols {
                let j = c as usize;
                let depends = match self.sweep {
                    Sweep::Forward => j < i,
                    Sweep::Backward => j > i && j < n,
                };
                if depends && self.level_of[j] >= self.level_of[i] {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::CooMatrix;
    use crate::gen::{poisson_2d_5pt, poisson_3d_7pt, tridiagonal};

    #[test]
    fn diagonal_matrix_is_one_level() {
        let a = CsrMatrix::identity(5);
        let ls = LevelSets::analyze(&a, Sweep::Forward);
        assert_eq!(ls.num_levels(), 1);
        assert_eq!(ls.levels[0], vec![0, 1, 2, 3, 4]);
        assert!(ls.validate(&a));
    }

    #[test]
    fn tridiagonal_is_fully_sequential() {
        // Each row depends on the previous: n levels.
        let a = tridiagonal(6);
        let ls = LevelSets::analyze(&a, Sweep::Forward);
        assert_eq!(ls.num_levels(), 6);
        assert!(ls.validate(&a));
        let back = LevelSets::analyze(&a, Sweep::Backward);
        assert_eq!(back.num_levels(), 6);
        assert_eq!(back.level_of[5], 0);
        assert_eq!(back.level_of[0], 5);
        assert!(back.validate(&a));
    }

    #[test]
    fn poisson_2d_levels_are_antidiagonals() {
        // 5-point stencil: level(x, y) = x + y ("wavefront").
        let nx = 5;
        let a = poisson_2d_5pt(nx, 4, 1.0);
        let ls = LevelSets::analyze(&a, Sweep::Forward);
        assert_eq!(ls.num_levels(), 5 + 4 - 1);
        for y in 0..4 {
            for x in 0..nx {
                assert_eq!(ls.level_of[y * nx + x], (x + y) as u32);
            }
        }
        assert!(ls.validate(&a));
    }

    #[test]
    fn poisson_3d_parallelism_feeds_six_workers() {
        let a = poisson_3d_7pt(12, 12, 12);
        let ls = LevelSets::analyze(&a, Sweep::Forward);
        // Wavefront levels of a 12^3 grid hold up to ~78 rows; mean well
        // above 6 -> the six workers can be kept busy, as the paper found.
        assert!(ls.mean_parallelism() > 6.0, "parallelism {}", ls.mean_parallelism());
        assert!(ls.validate(&a));
    }

    #[test]
    fn halo_columns_are_not_dependencies() {
        // A 3-row local matrix whose rows reference column 5 (a halo slot
        // in a 3-row, 6-col local layout): levels must ignore it.
        let mut coo = CooMatrix::new(3, 6);
        for i in 0..3 {
            coo.push(i, i, 4.0);
            coo.push(i, 5, -1.0);
        }
        coo.push(2, 0, -1.0);
        let a = coo.to_csr();
        let ls = LevelSets::analyze(&a, Sweep::Forward);
        assert_eq!(ls.level_of, vec![0, 0, 1]);
        assert!(ls.validate(&a));
    }

    #[test]
    fn levels_partition_all_rows() {
        let a = poisson_2d_5pt(7, 7, 1.0);
        let ls = LevelSets::analyze(&a, Sweep::Forward);
        let mut all: Vec<usize> = ls.levels.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..49).collect::<Vec<_>>());
    }

    #[test]
    fn empty_matrix() {
        let a = CooMatrix::new(0, 0).to_csr();
        let ls = LevelSets::analyze(&a, Sweep::Forward);
        assert_eq!(ls.num_levels(), 0);
        assert!(ls.validate(&a));
    }
}
