//! # sparse — host-side sparse matrix infrastructure
//!
//! Everything the solver framework needs *before* data reaches the device:
//!
//! * [`formats`] — COO, CSR and the paper's **modified CSR** (§II-C): a CSR
//!   structure holding only off-diagonal entries, with the diagonal stored
//!   as a separate dense array (saves the diagonal's column indices and
//!   gives Gauss-Seidel/ILU direct diagonal access).
//! * [`io`] — MatrixMarket reading/writing, so real SuiteSparse matrices
//!   can be dropped in.
//! * [`gen`] — deterministic problem generators: the 7-point 3D and 5-point
//!   2D Poisson discretisations used by the paper's scaling study, and
//!   synthetic analogues of its four SuiteSparse benchmark matrices
//!   ([`gen::suitesparse`]).
//! * [`partition`] — row-wise domain decomposition across tiles (§II-B):
//!   nnz-balanced contiguous blocks and grid-aware box decompositions.
//! * [`halo`] — the paper's novel reordering strategy (§IV): classify cells
//!   as interior / separator / halo, group separators into regions by their
//!   neighbour-tile set, and establish the consistent intra-region ordering
//!   that allows blockwise, broadcastable halo exchanges.
//! * [`levelset`] — level-set scheduling (§V-A): the dependency levels of
//!   triangular solves, used to parallelise Gauss-Seidel and ILU across the
//!   six worker threads of a tile.

//! * [`reorder`] — reverse Cuthill–McKee bandwidth reduction (improves
//!   level-set parallelism of the triangular factors).
//! * [`sell`] — the Sliced ELLPACK format the paper defers to future work
//!   (§II-C), implemented so its IPU hypothesis can be tested.

pub mod fingerprint;
pub mod formats;
pub mod gen;
pub mod halo;
pub mod io;
pub mod levelset;
pub mod partition;
pub mod reorder;
pub mod sell;

pub use formats::{CooMatrix, CsrMatrix, ModifiedCsr};
pub use halo::{CellKind, HaloDecomposition, LocalMatrix, Region};
pub use levelset::LevelSets;
pub use partition::Partition;
pub use sell::SellMatrix;
