//! Row-wise domain decomposition.
//!
//! The framework distributes the matrix row-wise across all tiles (§II-B).
//! Two families of partitions are provided: *contiguous* ranges balanced by
//! row count or by nnz (the general-matrix path), and *geometric box*
//! decompositions for matrices that come from structured grids (the
//! Poisson scaling study) — the latter minimise the surface-to-volume
//! ratio, which directly controls halo-exchange volume.

use crate::formats::CsrMatrix;
use crate::gen::Grid3;

/// An assignment of every matrix row to exactly one part (tile).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// `parts[p]` = sorted global row ids owned by part `p`. May be empty
    /// for over-decomposed small problems.
    pub parts: Vec<Vec<usize>>,
    /// `owner[row]` = part id.
    pub owner: Vec<u32>,
}

impl Partition {
    fn from_owner(owner: Vec<u32>, num_parts: usize) -> Self {
        let mut parts = vec![Vec::new(); num_parts];
        for (row, &p) in owner.iter().enumerate() {
            parts[p as usize].push(row);
        }
        Partition { parts, owner }
    }

    /// Equal-sized contiguous row blocks.
    pub fn contiguous(num_rows: usize, num_parts: usize) -> Self {
        assert!(num_parts > 0);
        let mut owner = vec![0u32; num_rows];
        for (row, o) in owner.iter_mut().enumerate() {
            // Distribute remainders evenly: part p owns rows
            // [p*n/P, (p+1)*n/P).
            *o = ((row * num_parts) / num_rows.max(1)) as u32;
        }
        Self::from_owner(owner, num_parts)
    }

    /// Contiguous row blocks balanced by nonzero count — the load balance
    /// that matters for SpMV, where per-row cost is proportional to nnz.
    ///
    /// Whenever `num_rows >= num_parts`, every part is guaranteed at least
    /// one row: if the accumulated nnz stalls below the next threshold
    /// (light head rows ahead of a heavy tail), advancement is forced once
    /// the remaining rows are only just enough to feed the remaining
    /// parts. Over-decomposed problems (`num_rows < num_parts`) still
    /// leave trailing parts empty, as documented on [`Partition::parts`].
    pub fn balanced_by_nnz(a: &CsrMatrix, num_parts: usize) -> Self {
        assert!(num_parts > 0);
        let total = a.nnz() as f64;
        let per_part = total / num_parts as f64;
        let mut owner = vec![0u32; a.nrows];
        let mut acc = 0.0;
        let mut part = 0u32;
        for row in 0..a.nrows {
            // Advance to the next part when this one has its share (the
            // `acc > 0` guard keeps all-zero matrices from starving part
            // 0), but never beyond the last part...
            let wants = acc > 0.0
                && acc >= per_part * (part as f64 + 1.0)
                && (part as usize) < num_parts - 1;
            // ...and advance unconditionally once the unassigned rows are
            // exactly enough to give each remaining part one row — the
            // guarantee the cap alone cannot provide.
            let parts_after = num_parts - 1 - part as usize;
            let must = a.nrows >= num_parts && a.nrows - row <= parts_after;
            if wants || must {
                part += 1;
            }
            owner[row] = part;
            acc += a.row_nnz(row) as f64;
        }
        Self::from_owner(owner, num_parts)
    }

    /// Geometric box decomposition of a 3D grid into `px × py × pz`
    /// subdomains (must multiply to the part count you want).
    pub fn grid_3d(grid: Grid3, px: usize, py: usize, pz: usize) -> Self {
        assert!(px >= 1 && py >= 1 && pz >= 1);
        assert!(px <= grid.nx && py <= grid.ny && pz <= grid.nz, "more parts than cells per axis");
        let num_parts = px * py * pz;
        let mut owner = vec![0u32; grid.num_cells()];
        for i in 0..grid.num_cells() {
            let (x, y, z) = grid.coords(i);
            let bx = x * px / grid.nx;
            let by = y * py / grid.ny;
            let bz = z * pz / grid.nz;
            owner[i] = ((bz * py + by) * px + bx) as u32;
        }
        Self::from_owner(owner, num_parts)
    }

    /// Geometric box decomposition of a 2D grid.
    pub fn grid_2d(nx: usize, ny: usize, px: usize, py: usize) -> Self {
        Self::grid_3d(Grid3 { nx, ny, nz: 1 }, px, py, 1)
    }

    /// Pick a near-cubic factorisation of `num_parts` for `grid` and build
    /// the box decomposition. Falls back to slabs if the grid is too small
    /// along an axis.
    pub fn grid_3d_auto(grid: Grid3, num_parts: usize) -> Self {
        Self::try_grid_3d_auto(grid, num_parts).unwrap_or_else(|| {
            panic!("cannot factor {num_parts} parts into grid {}x{}x{}", grid.nx, grid.ny, grid.nz)
        })
    }

    /// [`Partition::grid_3d_auto`] returning `None` instead of panicking
    /// when `num_parts` has no factorisation bounded by the grid — the
    /// auto-tuner uses this to filter unfeasible geometric candidates.
    pub fn try_grid_3d_auto(grid: Grid3, num_parts: usize) -> Option<Self> {
        let (px, py, pz) = try_factor3(num_parts, grid.nx, grid.ny, grid.nz)?;
        Some(Self::grid_3d(grid, px, py, pz))
    }

    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    pub fn num_rows(&self) -> usize {
        self.owner.len()
    }

    #[inline]
    pub fn owner_of(&self, row: usize) -> usize {
        self.owner[row] as usize
    }

    pub fn rows_of(&self, part: usize) -> &[usize] {
        &self.parts[part]
    }

    /// Max part size / mean part size (1.0 = perfect row balance).
    pub fn row_imbalance(&self) -> f64 {
        let max = self.parts.iter().map(Vec::len).max().unwrap_or(0) as f64;
        let nonempty = self.parts.iter().filter(|p| !p.is_empty()).count().max(1);
        let mean = self.owner.len() as f64 / nonempty as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// nnz of the heaviest part / mean nnz per part.
    pub fn nnz_imbalance(&self, a: &CsrMatrix) -> f64 {
        let loads: Vec<usize> =
            self.parts.iter().map(|rows| rows.iter().map(|&r| a.row_nnz(r)).sum()).collect();
        let max = *loads.iter().max().unwrap_or(&0) as f64;
        let nonempty = loads.iter().filter(|&&l| l > 0).count().max(1);
        let mean = a.nnz() as f64 / nonempty as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Check internal consistency (each row in exactly one part, owners
    /// match).
    pub fn validate(&self) -> bool {
        let mut count = 0;
        for (p, rows) in self.parts.iter().enumerate() {
            let mut prev = None;
            for &r in rows {
                if self.owner.get(r).copied() != Some(p as u32) {
                    return false;
                }
                if prev.is_some_and(|q| q >= r) {
                    return false; // not sorted / duplicate
                }
                prev = Some(r);
                count += 1;
            }
        }
        count == self.owner.len()
    }
}

/// Factor `n` into three near-equal factors bounded by the grid
/// dimensions; `None` when no bounded factorisation exists.
fn try_factor3(n: usize, nx: usize, ny: usize, nz: usize) -> Option<(usize, usize, usize)> {
    let mut best = None;
    let mut best_score = f64::INFINITY;
    for px in 1..=n {
        if n % px != 0 || px > nx {
            continue;
        }
        let rest = n / px;
        for py in 1..=rest {
            if rest % py != 0 || py > ny {
                continue;
            }
            let pz = rest / py;
            if pz > nz {
                continue;
            }
            // Prefer near-cubic boxes: minimise the surface of the
            // *largest* box (ceil sides), which both favours cubic shapes
            // and penalises uneven splits — the BSP makespan is set by the
            // biggest box.
            let (sx, sy, sz) =
                (nx.div_ceil(px) as f64, ny.div_ceil(py) as f64, nz.div_ceil(pz) as f64);
            let score = sx * sy + sy * sz + sx * sz;
            if score < best_score {
                best_score = score;
                best = Some((px, py, pz));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{poisson_3d_7pt, tridiagonal};

    #[test]
    fn contiguous_covers_all_rows() {
        let p = Partition::contiguous(10, 3);
        assert!(p.validate());
        assert_eq!(p.num_parts(), 3);
        let sizes: Vec<usize> = p.parts.iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| (3..=4).contains(&s)), "{sizes:?}");
        // Contiguity.
        for rows in &p.parts {
            for w in rows.windows(2) {
                assert_eq!(w[1], w[0] + 1);
            }
        }
    }

    #[test]
    fn contiguous_more_parts_than_rows() {
        let p = Partition::contiguous(2, 5);
        assert!(p.validate());
        assert_eq!(p.parts.iter().filter(|r| !r.is_empty()).count(), 2);
    }

    #[test]
    fn nnz_balance_beats_row_split_on_skewed_matrix() {
        // First rows dense, later rows sparse.
        let mut coo = crate::formats::CooMatrix::new(100, 100);
        for i in 0..100 {
            coo.push(i, i, 1.0);
            if i < 10 {
                for j in 0..50 {
                    if j != i {
                        coo.push(i, j, 0.1);
                    }
                }
            }
        }
        let a = coo.to_csr();
        let by_rows = Partition::contiguous(100, 4);
        let by_nnz = Partition::balanced_by_nnz(&a, 4);
        assert!(by_nnz.validate());
        assert!(by_nnz.nnz_imbalance(&a) < by_rows.nnz_imbalance(&a));
    }

    #[test]
    fn grid_3d_boxes_are_connected_and_balanced() {
        let grid = Grid3 { nx: 8, ny: 8, nz: 8 };
        let a = poisson_3d_7pt(8, 8, 8);
        let p = Partition::grid_3d(grid, 2, 2, 2);
        assert!(p.validate());
        assert_eq!(p.num_parts(), 8);
        assert!(p.row_imbalance() < 1.01);
        assert!(p.nnz_imbalance(&a) < 1.1);
        // Each box is 4x4x4 = 64 cells.
        assert!(p.parts.iter().all(|r| r.len() == 64));
    }

    #[test]
    fn grid_auto_factors_cube() {
        let grid = Grid3 { nx: 16, ny: 16, nz: 16 };
        let p = Partition::grid_3d_auto(grid, 8);
        assert_eq!(p.num_parts(), 8);
        assert!(p.validate());
        assert!(p.parts.iter().all(|r| r.len() == 512));
    }

    #[test]
    fn balanced_by_nnz_is_contiguous() {
        let a = tridiagonal(50);
        let p = Partition::balanced_by_nnz(&a, 7);
        assert!(p.validate());
        for rows in &p.parts {
            for w in rows.windows(2) {
                assert_eq!(w[1], w[0] + 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot factor")]
    fn impossible_grid_factorisation_panics() {
        // 7 parts across a 2x2x2 grid cannot work (7 > 2 on every axis and
        // prime).
        Partition::grid_3d_auto(Grid3 { nx: 2, ny: 2, nz: 2 }, 7);
    }

    #[test]
    fn try_grid_auto_reports_feasibility() {
        assert!(Partition::try_grid_3d_auto(Grid3 { nx: 2, ny: 2, nz: 2 }, 7).is_none());
        let p = Partition::try_grid_3d_auto(Grid3 { nx: 4, ny: 4, nz: 4 }, 8).unwrap();
        assert_eq!(p.num_parts(), 8);
        assert!(p.validate());
    }

    /// Regression: a heavy row after a light head used to stall `acc`
    /// below every threshold, so the cap's "never leave later parts
    /// without rows" promise was broken — all trailing parts came back
    /// empty. Every part must get at least one row when
    /// `num_rows >= num_parts`.
    #[test]
    fn balanced_by_nnz_never_leaves_parts_empty() {
        // One dense row carrying ~97% of the nnz; every other row a lone
        // diagonal. Placing the heavy row last starves the accumulator.
        let build = |heavy_row: usize, n: usize| {
            let mut coo = crate::formats::CooMatrix::new(n, n);
            for i in 0..n {
                coo.push(i, i, 1.0);
            }
            for j in 0..n {
                if j != heavy_row {
                    coo.push(heavy_row, j, 0.5);
                }
            }
            coo.to_csr()
        };
        for n in [4usize, 8, 17] {
            for heavy_row in [0, n / 2, n - 1] {
                let a = build(heavy_row, n);
                for parts in 1..=n {
                    let p = Partition::balanced_by_nnz(&a, parts);
                    assert!(p.validate());
                    assert!(
                        p.parts.iter().all(|rows| !rows.is_empty()),
                        "empty part: n={n} heavy_row={heavy_row} parts={parts} sizes={:?}",
                        p.parts.iter().map(Vec::len).collect::<Vec<_>>()
                    );
                }
            }
        }
        // All-zero-structure edge (nnz = 0 everywhere is impossible in
        // CSR-with-diagonal workloads, but the identity-free case must
        // still cover every part).
        let empty = crate::formats::CooMatrix::new(5, 5).to_csr();
        let p = Partition::balanced_by_nnz(&empty, 5);
        assert!(p.validate());
        assert!(p.parts.iter().all(|rows| rows.len() == 1));
    }

    #[test]
    fn balanced_by_nnz_overdecomposed_stays_supported() {
        let a = tridiagonal(3);
        let p = Partition::balanced_by_nnz(&a, 8);
        assert!(p.validate());
        assert_eq!(p.parts.iter().filter(|r| !r.is_empty()).count(), 3);
    }
}
