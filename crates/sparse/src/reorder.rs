//! Matrix reordering.
//!
//! The paper's §IV reorders for *communication* (halo regions) because the
//! IPU has no caches to reorder for. Classic bandwidth-reducing orderings
//! still matter on the IPU for a different reason: they shorten the
//! dependency chains of the triangular factors, improving level-set
//! parallelism — and they make contiguous row partitions geometric. This
//! module provides reverse Cuthill–McKee (RCM) and bandwidth diagnostics.

use crate::formats::CsrMatrix;

/// Matrix (half-)bandwidth: max |i - j| over stored entries.
pub fn bandwidth(a: &CsrMatrix) -> usize {
    let mut bw = 0usize;
    for i in 0..a.nrows {
        let (cols, _) = a.row(i);
        for &c in cols {
            bw = bw.max(i.abs_diff(c as usize));
        }
    }
    bw
}

/// Reverse Cuthill–McKee ordering. Returns a permutation `perm` with
/// `perm[new] = old`, suitable for [`CsrMatrix::permute_symmetric`].
/// Works per connected component; starts each from a pseudo-peripheral
/// vertex found by repeated BFS.
pub fn rcm(a: &CsrMatrix) -> Vec<usize> {
    assert_eq!(a.nrows, a.ncols, "RCM needs a square (structurally symmetric) matrix");
    let n = a.nrows;
    let degree = |v: usize| a.row_nnz(v);
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);

    // BFS returning (levels, last level) from a start vertex.
    let bfs = |start: usize, visited_scratch: &mut Vec<bool>| -> (usize, usize) {
        visited_scratch.iter_mut().for_each(|v| *v = false);
        let mut frontier = vec![start];
        visited_scratch[start] = true;
        let mut depth = 0;
        let mut last = start;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &v in &frontier {
                last = v;
                let (cols, _) = a.row(v);
                for &c in cols {
                    let u = c as usize;
                    if !visited_scratch[u] {
                        visited_scratch[u] = true;
                        next.push(u);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            depth += 1;
            frontier = next;
        }
        (depth, last)
    };

    let mut scratch = vec![false; n];
    for root in 0..n {
        if visited[root] {
            continue;
        }
        // Pseudo-peripheral vertex: iterate BFS to a deepest endpoint.
        let (mut depth, mut far) = bfs(root, &mut scratch);
        let start = loop {
            let (d2, f2) = bfs(far, &mut scratch);
            if d2 > depth {
                depth = d2;
                far = f2;
            } else {
                break far;
            }
        };

        // Cuthill–McKee BFS with degree-sorted neighbour expansion.
        let mut queue = std::collections::VecDeque::new();
        visited[start] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let (cols, _) = a.row(v);
            let mut nbrs: Vec<usize> =
                cols.iter().map(|&c| c as usize).filter(|&u| !visited[u]).collect();
            nbrs.sort_by_key(|&u| degree(u));
            for u in nbrs {
                if !visited[u] {
                    visited[u] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    order.reverse();
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{poisson_2d_5pt, random_spd, tridiagonal};
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn shuffle(a: &CsrMatrix, seed: u64) -> CsrMatrix {
        let mut perm: Vec<usize> = (0..a.nrows).collect();
        perm.shuffle(&mut rand::rngs::SmallRng::seed_from_u64(seed));
        a.permute_symmetric(&perm)
    }

    #[test]
    fn rcm_is_a_permutation() {
        let a = random_spd(50, 6, 12);
        let perm = rcm(&a);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn rcm_restores_shuffled_tridiagonal_bandwidth() {
        let a = tridiagonal(60);
        assert_eq!(bandwidth(&a), 1);
        let shuffled = shuffle(&a, 5);
        assert!(bandwidth(&shuffled) > 10);
        let perm = rcm(&shuffled);
        let restored = shuffled.permute_symmetric(&perm);
        // RCM recovers bandwidth 1 on a path graph.
        assert_eq!(bandwidth(&restored), 1);
    }

    #[test]
    fn rcm_reduces_bandwidth_on_shuffled_grid() {
        let a = poisson_2d_5pt(12, 12, 1.0);
        let shuffled = shuffle(&a, 9);
        let before = bandwidth(&shuffled);
        let after = bandwidth(&shuffled.permute_symmetric(&rcm(&shuffled)));
        assert!(after * 3 < before, "bandwidth {before} -> {after}");
    }

    #[test]
    fn rcm_shrinks_halo_volume_of_contiguous_partitions() {
        // The IPU-relevant payoff: locality in the ordering means
        // contiguous row blocks have small boundaries, so the §IV halo
        // exchange moves far less data.
        use crate::halo::HaloDecomposition;
        use crate::partition::Partition;
        let a = shuffle(&poisson_2d_5pt(12, 12, 1.0), 3);
        let vol = |m: &CsrMatrix| {
            let p = Partition::balanced_by_nnz(m, 6);
            HaloDecomposition::build(m, &p).exchange_volume()
        };
        let before = vol(&a);
        let after = vol(&a.permute_symmetric(&rcm(&a)));
        assert!(after * 2 < before, "halo volume {before} -> {after}");
    }

    #[test]
    fn rcm_handles_disconnected_components() {
        // Two disjoint tridiagonal blocks.
        let mut coo = crate::formats::CooMatrix::new(10, 10);
        for b in [0usize, 5] {
            for i in 0..5 {
                coo.push(b + i, b + i, 2.0);
                if i > 0 {
                    coo.push(b + i, b + i - 1, -1.0);
                    coo.push(b + i - 1, b + i, -1.0);
                }
            }
        }
        let a = coo.to_csr();
        let perm = rcm(&a);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        assert_eq!(bandwidth(&a.permute_symmetric(&perm)), 1);
    }
}
