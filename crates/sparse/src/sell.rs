//! The Sliced ELLPACK (SELL) format — the paper's §II-C "future work".
//!
//! SELL groups rows into slices of height `C`; within a slice every row is
//! padded to the slice's maximum length and entries are stored
//! column-major, which vectorises beautifully on wide-SIMD machines. The
//! paper *anticipates* the gains to be small on IPUs — two-wide vector
//! units, no caches, single-cycle branches — and leaves the exploration to
//! future work. This module implements the format (host side) so the
//! hypothesis can actually be tested: `cargo run -p graphene-bench --bin
//! ablations` includes a CSR-vs-SELL codelet comparison on the simulated
//! device.

use crate::formats::CsrMatrix;

/// A Sliced ELLPACK matrix with slice height `C`.
#[derive(Clone, Debug, PartialEq)]
pub struct SellMatrix {
    pub nrows: usize,
    pub ncols: usize,
    /// Slice height (rows per slice).
    pub c: usize,
    /// Per-slice row width (the longest row in the slice).
    pub slice_width: Vec<usize>,
    /// Start of each slice's data in `vals`/`cols`: `slice_ptr[s] ..
    /// slice_ptr[s] + c * slice_width[s]`, column-major within the slice.
    pub slice_ptr: Vec<usize>,
    /// Padded values (0.0 in padding).
    pub vals: Vec<f64>,
    /// Padded column indices. Padding repeats a *column* the row already
    /// references (its last real entry, or column 0 for empty rows), so
    /// gathers stay in-bounds — also for rectangular matrices — and
    /// padding contributes `0.0 * x[col]`.
    pub cols: Vec<u32>,
}

impl SellMatrix {
    /// Convert from CSR with slice height `c`.
    pub fn from_csr(a: &CsrMatrix, c: usize) -> SellMatrix {
        assert!(c > 0);
        let nslices = a.nrows.div_ceil(c);
        let mut slice_width = Vec::with_capacity(nslices);
        let mut slice_ptr = Vec::with_capacity(nslices + 1);
        slice_ptr.push(0);
        let mut vals = Vec::new();
        let mut cols = Vec::new();
        for s in 0..nslices {
            let lo = s * c;
            let hi = ((s + 1) * c).min(a.nrows);
            let width = (lo..hi).map(|i| a.row_nnz(i)).max().unwrap_or(0);
            slice_width.push(width);
            // Column-major: entry k of every row in the slice, row-padded.
            for k in 0..width {
                for i in lo..lo + c {
                    if i < a.nrows && k < a.row_nnz(i) {
                        let (rc, rv) = a.row(i);
                        cols.push(rc[k]);
                        vals.push(rv[k]);
                    } else {
                        // Padding: contributes 0 * x[col] for a column the
                        // row actually references (never the row index —
                        // that is out of bounds whenever ncols < nrows).
                        let pad = if i < a.nrows && a.row_nnz(i) > 0 {
                            a.row(i).0[a.row_nnz(i) - 1]
                        } else {
                            0
                        };
                        cols.push(pad);
                        vals.push(0.0);
                    }
                }
            }
            slice_ptr.push(vals.len());
        }
        SellMatrix { nrows: a.nrows, ncols: a.ncols, c, slice_width, slice_ptr, vals, cols }
    }

    /// Stored entries including padding.
    pub fn padded_nnz(&self) -> usize {
        self.vals.len()
    }

    /// Padding overhead: padded / real nnz.
    pub fn padding_ratio(&self, real_nnz: usize) -> f64 {
        self.padded_nnz() as f64 / real_nnz.max(1) as f64
    }

    /// Reference SpMV `y = A x`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        y.fill(0.0);
        for s in 0..self.slice_width.len() {
            let lo = s * self.c;
            let base = self.slice_ptr[s];
            let width = self.slice_width[s];
            for k in 0..width {
                for r in 0..self.c {
                    let i = lo + r;
                    if i >= self.nrows {
                        continue;
                    }
                    let idx = base + k * self.c + r;
                    y[i] += self.vals[idx] * x[self.cols[idx] as usize];
                }
            }
        }
    }

    /// Device memory footprint in bytes (f32 values, u32 indices, u32
    /// slice metadata) — compare with `ModifiedCsr::device_bytes`.
    pub fn device_bytes(&self) -> usize {
        4 * self.vals.len() + 4 * self.cols.len() + 4 * (self.slice_width.len() * 2 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{poisson_2d_5pt, random_spd, tridiagonal};

    #[test]
    fn sell_spmv_matches_csr() {
        for (a, c) in
            [(poisson_2d_5pt(7, 9, 1.0), 4), (random_spd(37, 8, 3), 6), (tridiagonal(20), 7)]
        {
            let sell = SellMatrix::from_csr(&a, c);
            let x: Vec<f64> = (0..a.ncols).map(|i| (i as f64 * 0.29).sin()).collect();
            let mut y1 = vec![0.0; a.nrows];
            let mut y2 = vec![0.0; a.nrows];
            a.spmv(&x, &mut y1);
            sell.spmv(&x, &mut y2);
            for (g, w) in y2.iter().zip(&y1) {
                assert!((g - w).abs() < 1e-12, "c={c}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn uniform_rows_have_no_padding() {
        // A matrix where every row has the same nnz pads nothing.
        let a = tridiagonal(12);
        // Interior rows have 3 entries, the two end rows 2 — slice of the
        // whole matrix pads 2 entries.
        let sell = SellMatrix::from_csr(&a, 12);
        assert_eq!(sell.padded_nnz(), a.nnz() + 2);
        // Slice height 1 == ELLPACK-per-row == no padding at all.
        let sell1 = SellMatrix::from_csr(&a, 1);
        assert_eq!(sell1.padded_nnz(), a.nnz());
    }

    #[test]
    fn skewed_rows_pad_heavily_with_tall_slices() {
        // One dense row in an otherwise diagonal matrix.
        let mut coo = crate::formats::CooMatrix::new(32, 32);
        for i in 0..32 {
            coo.push(i, i, 1.0);
        }
        for j in 0..31 {
            coo.push(0, j + 1, 0.5);
        }
        let a = coo.to_csr();
        let tall = SellMatrix::from_csr(&a, 32);
        let short = SellMatrix::from_csr(&a, 2);
        assert!(tall.padding_ratio(a.nnz()) > 10.0);
        assert!(short.padding_ratio(a.nnz()) < 2.0);
        // Both still compute correctly.
        let x = vec![1.0; 32];
        let mut y = vec![0.0; 32];
        tall.spmv(&x, &mut y);
        assert!((y[0] - (1.0 + 31.0 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn rectangular_padding_stays_in_column_bounds() {
        // Regression: padding used to push the *row* index as a column
        // index, which is out of bounds (or silently wrong) as soon as
        // ncols < nrows. 8x3 matrix, ragged rows, one empty row.
        let mut coo = crate::formats::CooMatrix::new(8, 3);
        coo.push(0, 0, 2.0);
        coo.push(0, 2, -1.0);
        coo.push(1, 1, 3.0);
        // row 2 stays empty
        coo.push(3, 0, 1.0);
        coo.push(3, 1, 1.0);
        coo.push(3, 2, 1.0);
        for i in 4..8 {
            coo.push(i, (i * 2) % 3, 1.5);
        }
        let a = coo.to_csr();
        assert!(a.ncols < a.nrows);
        for c in [1, 3, 4, 8] {
            let sell = SellMatrix::from_csr(&a, c);
            for &col in &sell.cols {
                assert!(
                    (col as usize) < a.ncols,
                    "c={c}: padding column {col} out of bounds for ncols={}",
                    a.ncols
                );
            }
            let x: Vec<f64> = (0..a.ncols).map(|i| 1.0 + i as f64).collect();
            let mut y1 = vec![0.0; a.nrows];
            let mut y2 = vec![0.0; a.nrows];
            a.spmv(&x, &mut y1);
            sell.spmv(&x, &mut y2);
            assert_eq!(y1, y2, "c={c}");
        }
    }

    #[test]
    fn ragged_last_slice() {
        let a = poisson_2d_5pt(5, 5, 1.0); // 25 rows, c=4 -> 7 slices
        let sell = SellMatrix::from_csr(&a, 4);
        assert_eq!(sell.slice_width.len(), 7);
        let x: Vec<f64> = (0..25).map(|i| i as f64).collect();
        let mut y1 = vec![0.0; 25];
        let mut y2 = vec![0.0; 25];
        a.spmv(&x, &mut y1);
        sell.spmv(&x, &mut y2);
        assert_eq!(y1, y2);
    }
}
