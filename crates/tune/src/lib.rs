//! # graphene-tune — cost-model auto-tuning with a persistent plan cache
//!
//! Every solve used to run on fixed heuristics: nnz-balanced contiguous
//! partitioning at `rows_per_tile = 64`, default pass toggles, default
//! storage parameters. This crate turns those into a *searched* decision:
//!
//! 1. **Candidates** — the cross product of partition strategy
//!    ([`Strategy`]: contiguous / nnz-balanced / geometric 3D boxes),
//!    a rows-per-tile ladder (which sets the part count) and the graph
//!    compiler's pass toggle (`CompileOptions::optimise`), enumerated
//!    deterministically by [`candidate_space`].
//! 2. **Scoring** — the caller supplies a probe closure that compiles a
//!    small representative program (one distributed SpMV) for a candidate
//!    and returns its **modelled device cycles** from the simulator's cost
//!    model — candidates are scored without running a single solver
//!    iteration. The partition's nnz imbalance is the tie-breaker (the
//!    PR 6 imbalance analysis), then enumeration order, so the argmin in
//!    [`tune_with_cache`] is fully deterministic.
//! 3. **Persistence** — the winner is written to a versioned JSON file in
//!    [`PlanCache`] (`GRAPHENE_TUNE_CACHE` dir, default
//!    `.graphene-cache/`), keyed by ([`StructureFingerprint`] digest,
//!    solver-config key, [`COST_MODEL_REVISION`]). The second solve of a
//!    structure loads the plan and skips the search entirely; a cost-model
//!    bump or schema change invalidates the entry rather than reusing a
//!    stale score.
//!
//! The crate is deliberately free of solver machinery (it sits *below*
//! `graphene-core`, which wires it into `runner::solve`): it owns the
//! search space, the argmin and the cache, and scores through the closure
//! the runner provides.
//!
//! A SELL-C-σ slice width rides along as an *advisory* decision
//! ([`pick_sell_c`], scored by padded device bytes): the solve path
//! stores the matrix in modified CSR, so the chosen width is recorded in
//! the plan (for format-conversion consumers like the `ablations` bench)
//! but does not change the compiled program.

use std::path::PathBuf;
use std::time::Instant;

use ipu_sim::COST_MODEL_REVISION;
use json::Json;
use sparse::fingerprint::fold_bytes;
use sparse::formats::CsrMatrix;
use sparse::sell::SellMatrix;

/// Version of the on-disk plan schema. Bump on any incompatible change;
/// older files then read as cache misses, never as garbage plans.
pub const TUNE_SCHEMA_VERSION: u64 = 1;

/// Environment variable overriding the cache directory.
pub const CACHE_ENV: &str = "GRAPHENE_TUNE_CACHE";

/// Default cache directory (relative to the working directory).
pub const DEFAULT_CACHE_DIR: &str = ".graphene-cache";

// ---------------------------------------------------------------------
// Candidates
// ---------------------------------------------------------------------

/// Partition family of a candidate configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Equal-sized contiguous row blocks (`Partition::contiguous`).
    Contiguous,
    /// Contiguous blocks balanced by nnz (`Partition::balanced_by_nnz`).
    BalancedByNnz,
    /// Geometric box decomposition (`Partition::grid_3d_auto`) — only
    /// enumerable when the caller knows the matrix came from a grid.
    Grid3dAuto,
}

impl Strategy {
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Contiguous => "contiguous",
            Strategy::BalancedByNnz => "balanced_by_nnz",
            Strategy::Grid3dAuto => "grid_3d_auto",
        }
    }

    pub fn from_name(s: &str) -> Option<Strategy> {
        Some(match s {
            "contiguous" => Strategy::Contiguous,
            "balanced_by_nnz" => Strategy::BalancedByNnz,
            "grid_3d_auto" => Strategy::Grid3dAuto,
            _ => return None,
        })
    }
}

/// One point in the search space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Candidate {
    pub strategy: Strategy,
    /// Target rows per tile; sets the part count for unpinned tile counts.
    pub rows_per_tile: usize,
    /// `CompileOptions::optimise` for the compiled plan. The pass
    /// pipeline is cycle-neutral by contract, so this scores identically
    /// on device cycles and ties resolve to the first enumerated value.
    pub optimise: bool,
}

/// What the probe measured for one candidate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Score {
    /// Modelled device cycles of the probe program — the objective.
    pub device_cycles: u64,
    /// Partition nnz imbalance in milli-units (1000 = perfectly
    /// balanced) — the deterministic tie-breaker.
    pub imbalance_milli: u64,
}

/// The rows-per-tile ladder searched when the caller has not pinned the
/// tile count.
pub const ROWS_PER_TILE_LADDER: &[usize] = &[16, 32, 64, 128, 256];

/// SELL-C-σ slice widths considered by [`pick_sell_c`].
pub const SELL_C_LADDER: &[usize] = &[2, 4, 8, 16, 32];

/// Enumerate the candidate space deterministically and return it together
/// with the index of the **default-heuristic candidate** (nnz-balanced at
/// `default_rows_per_tile` with `optimise_choices[0]`) — always a member,
/// so the argmin can never be worse than the untuned configuration.
///
/// `optimise_choices` is `[effective]` when the caller pinned the pass
/// toggle (options or environment) and `[true, false]` otherwise, with
/// the effective default first. `grid` enables the geometric family.
pub fn candidate_space(
    default_rows_per_tile: usize,
    rows_per_tile_pinned: bool,
    has_grid: bool,
    optimise_choices: &[bool],
) -> (Vec<Candidate>, usize) {
    assert!(!optimise_choices.is_empty());
    let mut ladder: Vec<usize> = if rows_per_tile_pinned {
        vec![default_rows_per_tile]
    } else {
        let mut l = ROWS_PER_TILE_LADDER.to_vec();
        if !l.contains(&default_rows_per_tile) {
            l.push(default_rows_per_tile);
        }
        l.sort_unstable();
        l
    };
    ladder.dedup();
    let mut strategies = vec![Strategy::BalancedByNnz, Strategy::Contiguous];
    if has_grid {
        strategies.push(Strategy::Grid3dAuto);
    }
    let mut out = Vec::new();
    let mut default_idx = 0;
    for &rows_per_tile in &ladder {
        for &strategy in &strategies {
            for &optimise in optimise_choices {
                if strategy == Strategy::BalancedByNnz
                    && rows_per_tile == default_rows_per_tile
                    && optimise == optimise_choices[0]
                {
                    default_idx = out.len();
                }
                out.push(Candidate { strategy, rows_per_tile, optimise });
            }
        }
    }
    (out, default_idx)
}

/// Advisory SELL-C-σ slice width: the ladder entry minimising padded
/// device bytes for this structure (ties to the smaller width).
pub fn pick_sell_c(a: &CsrMatrix, ladder: &[usize]) -> (usize, u64) {
    let mut best = (ladder.first().copied().unwrap_or(4), u64::MAX);
    for &c in ladder {
        let bytes = SellMatrix::from_csr(a, c).device_bytes() as u64;
        if bytes < best.1 {
            best = (c, bytes);
        }
    }
    best
}

// ---------------------------------------------------------------------
// Keys and plans
// ---------------------------------------------------------------------

/// The composite cache key: what must match for a stored plan to be
/// reusable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TuneKey {
    /// `StructureFingerprint::of(a).digest` — the sparsity structure.
    pub fingerprint: u64,
    /// Digest of everything else that shapes the search: solver config,
    /// machine model, pinned options (see [`solver_key`]).
    pub solver_key: u64,
    /// `ipu_sim::COST_MODEL_REVISION` at tuning time.
    pub model_revision: u32,
}

impl TuneKey {
    pub fn new(fingerprint: u64, solver_key: u64) -> TuneKey {
        TuneKey { fingerprint, solver_key, model_revision: COST_MODEL_REVISION }
    }

    /// The cache file carrying this key.
    pub fn file_name(&self) -> String {
        format!(
            "plan-{:016x}-{:016x}-r{}.json",
            self.fingerprint, self.solver_key, self.model_revision
        )
    }
}

/// Digest the non-structural half of the cache key from canonical string
/// parts (solver-config JSON, model parameters, pinned options). Order
/// matters; every part is length-delimited so parts cannot bleed into
/// each other.
pub fn solver_key(parts: &[&str]) -> u64 {
    let mut digest = 0x7455_4e45_4b45_5953;
    for p in parts {
        digest = fold_bytes(digest, p.as_bytes());
    }
    digest
}

/// A tuned configuration — the cacheable outcome of one search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TunedPlan {
    pub strategy: Strategy,
    pub rows_per_tile: usize,
    pub optimise: bool,
    /// Advisory SELL-C-σ slice width (see crate docs).
    pub sell_c: usize,
    /// Modelled probe device cycles of the winner.
    pub modelled_cycles: u64,
    /// Modelled probe device cycles of the default-heuristic candidate —
    /// kept in the plan so cache hits can still report the margin.
    pub default_cycles: u64,
    /// Candidates scored by the cold search that produced this plan.
    pub candidates_scored: u64,
}

impl TunedPlan {
    pub fn to_value(&self, key: &TuneKey) -> Json {
        Json::obj([
            ("schema", Json::from(TUNE_SCHEMA_VERSION)),
            ("model_revision", Json::from(key.model_revision as u64)),
            ("fingerprint", Json::from(format!("{:016x}", key.fingerprint).as_str())),
            ("solver_key", Json::from(format!("{:016x}", key.solver_key).as_str())),
            ("strategy", Json::from(self.strategy.name())),
            ("rows_per_tile", Json::from(self.rows_per_tile)),
            ("optimise", Json::Bool(self.optimise)),
            ("sell_c", Json::from(self.sell_c)),
            ("modelled_cycles", Json::from(self.modelled_cycles)),
            ("default_cycles", Json::from(self.default_cycles)),
            ("candidates_scored", Json::from(self.candidates_scored)),
        ])
    }

    /// Parse a cache document, validating schema version and every key
    /// component. Any mismatch or malformation is an `Err` (treated as a
    /// miss by [`PlanCache::load`]).
    pub fn from_value(v: &Json, key: &TuneKey) -> Result<TunedPlan, String> {
        let u = |k: &str| {
            v.get(k).and_then(Json::as_u64).ok_or_else(|| format!("missing integer '{k}'"))
        };
        let s = |k: &str| {
            v.get(k).and_then(Json::as_str).ok_or_else(|| format!("missing string '{k}'"))
        };
        if u("schema")? != TUNE_SCHEMA_VERSION {
            return Err(format!("schema {} != {TUNE_SCHEMA_VERSION}", u("schema")?));
        }
        if u("model_revision")? != key.model_revision as u64 {
            return Err("cost-model revision mismatch".into());
        }
        if s("fingerprint")? != format!("{:016x}", key.fingerprint) {
            return Err("fingerprint mismatch".into());
        }
        if s("solver_key")? != format!("{:016x}", key.solver_key) {
            return Err("solver key mismatch".into());
        }
        Ok(TunedPlan {
            strategy: Strategy::from_name(s("strategy")?).ok_or_else(|| {
                format!("unknown strategy '{}'", s("strategy").unwrap_or_default())
            })?,
            rows_per_tile: u("rows_per_tile")?.max(1) as usize,
            optimise: v.get("optimise").and_then(Json::as_bool).ok_or("missing bool 'optimise'")?,
            sell_c: u("sell_c")?.max(1) as usize,
            modelled_cycles: u("modelled_cycles")?,
            default_cycles: u("default_cycles")?,
            candidates_scored: u("candidates_scored")?,
        })
    }
}

// ---------------------------------------------------------------------
// The on-disk cache
// ---------------------------------------------------------------------

/// Directory of versioned JSON plan files, one per [`TuneKey`].
#[derive(Clone, Debug)]
pub struct PlanCache {
    pub dir: PathBuf,
}

impl PlanCache {
    pub fn at(dir: impl Into<PathBuf>) -> PlanCache {
        PlanCache { dir: dir.into() }
    }

    /// The cache directory the environment selects: `GRAPHENE_TUNE_CACHE`
    /// when set and non-empty, else `.graphene-cache`.
    pub fn default_dir() -> PathBuf {
        match std::env::var(CACHE_ENV) {
            Ok(d) if !d.trim().is_empty() => PathBuf::from(d),
            _ => PathBuf::from(DEFAULT_CACHE_DIR),
        }
    }

    pub fn path_of(&self, key: &TuneKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Load the plan stored under `key`. **Every** failure mode — no
    /// file, unreadable file, torn write, schema/revision/key mismatch —
    /// is a clean `None` (a cache miss), never an error: a corrupt cache
    /// entry re-tunes and is overwritten.
    pub fn load(&self, key: &TuneKey) -> Option<TunedPlan> {
        let text = std::fs::read_to_string(self.path_of(key)).ok()?;
        let doc = Json::parse(&text).ok()?;
        TunedPlan::from_value(&doc, key).ok()
    }

    /// Persist `plan` under `key` (write-to-temp + rename, so concurrent
    /// readers never observe a torn file). The temp name is unique per
    /// *writer* — pid alone is not enough, because two threads of one
    /// process sharing a temp path could rename each other's
    /// half-written file into place — so a process-wide counter joins
    /// the pid and every concurrent `store` works on its own file.
    pub fn store(&self, key: &TuneKey, plan: &TunedPlan) -> Result<PathBuf, String> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT_TMP: AtomicU64 = AtomicU64::new(0);
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| format!("cannot create {}: {e}", self.dir.display()))?;
        let path = self.path_of(key);
        let tmp = self.dir.join(format!(
            ".{}.tmp-{}-{}",
            key.file_name(),
            std::process::id(),
            NEXT_TMP.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, plan.to_value(key).to_pretty())
            .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| format!("cannot rename {} -> {}: {e}", tmp.display(), path.display()))?;
        Ok(path)
    }
}

// ---------------------------------------------------------------------
// The search
// ---------------------------------------------------------------------

/// What one [`tune_with_cache`] call decided, and how.
#[derive(Clone, Debug)]
pub struct TuneOutcome {
    pub plan: TunedPlan,
    /// `true` when the plan came from the cache (no candidate scored).
    pub cache_hit: bool,
    /// Candidates scored by *this* call (0 on a hit).
    pub candidates_scored: usize,
    /// Host microseconds spent searching (≈0 on a hit).
    pub search_micros: u64,
}

/// Tune: consult the cache, else score every candidate with `score` and
/// persist the deterministic argmin.
///
/// `score` returns `Err` for candidates that cannot be realised (e.g. an
/// unfactorable geometric decomposition) — they are skipped. The default
/// candidate must always be scorable; if everything fails the search
/// errors rather than guessing. Ordering: lowest `device_cycles`, then
/// lowest `imbalance_milli`, then first enumerated.
pub fn tune_with_cache<F>(
    cache: &PlanCache,
    key: &TuneKey,
    candidates: &[Candidate],
    default_idx: usize,
    sell_c: usize,
    mut score: F,
) -> Result<TuneOutcome, String>
where
    F: FnMut(&Candidate) -> Result<Score, String>,
{
    let start = Instant::now();
    if let Some(plan) = cache.load(key) {
        return Ok(TuneOutcome {
            plan,
            cache_hit: true,
            candidates_scored: 0,
            search_micros: start.elapsed().as_micros() as u64,
        });
    }
    assert!(default_idx < candidates.len(), "default candidate must be in the space");
    let mut best: Option<(usize, Score)> = None;
    let mut default_cycles = None;
    let mut scored = 0usize;
    for (i, cand) in candidates.iter().enumerate() {
        let s = match score(cand) {
            Ok(s) => s,
            Err(e) => {
                if i == default_idx {
                    return Err(format!("default candidate failed to score: {e}"));
                }
                continue;
            }
        };
        scored += 1;
        if i == default_idx {
            default_cycles = Some(s.device_cycles);
        }
        let better = match &best {
            None => true,
            Some((_, b)) => {
                (s.device_cycles, s.imbalance_milli) < (b.device_cycles, b.imbalance_milli)
            }
        };
        if better {
            best = Some((i, s));
        }
    }
    let (idx, s) = best.ok_or("no candidate could be scored")?;
    let winner = candidates[idx];
    let plan = TunedPlan {
        strategy: winner.strategy,
        rows_per_tile: winner.rows_per_tile,
        optimise: winner.optimise,
        sell_c,
        modelled_cycles: s.device_cycles,
        default_cycles: default_cycles.expect("default candidate was scored"),
        candidates_scored: scored as u64,
    };
    if let Err(e) = cache.store(key, &plan) {
        // A read-only cache dir degrades to tune-every-time, not failure.
        eprintln!("[graphene-tune] cannot persist plan: {e}");
    }
    Ok(TuneOutcome {
        plan,
        cache_hit: false,
        candidates_scored: scored,
        search_micros: start.elapsed().as_micros() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen::tridiagonal;

    fn tmp_cache(tag: &str) -> PlanCache {
        let dir = std::env::temp_dir().join(format!("graphene-tune-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        PlanCache::at(dir)
    }

    fn fake_score(c: &Candidate) -> Result<Score, String> {
        // Deterministic synthetic objective: favour 64 rows/tile, then
        // contiguous; optimise is score-neutral (mirroring the real
        // cycle-neutrality contract).
        let cycles = 1000
            + (c.rows_per_tile as i64 - 64).unsigned_abs()
            + if c.strategy == Strategy::Contiguous { 0 } else { 5 };
        Ok(Score { device_cycles: cycles, imbalance_milli: 1000 })
    }

    #[test]
    fn space_contains_default_and_is_deterministic() {
        let (cands, didx) = candidate_space(64, false, false, &[true, false]);
        assert_eq!(
            cands[didx],
            Candidate { strategy: Strategy::BalancedByNnz, rows_per_tile: 64, optimise: true }
        );
        let (again, didx2) = candidate_space(64, false, false, &[true, false]);
        assert_eq!(cands, again);
        assert_eq!(didx, didx2);
        // Pinned tiles collapse the ladder; grid adds the third family.
        let (pinned, _) = candidate_space(32, true, true, &[false]);
        assert!(pinned.iter().all(|c| c.rows_per_tile == 32 && !c.optimise));
        assert!(pinned.iter().any(|c| c.strategy == Strategy::Grid3dAuto));
    }

    #[test]
    fn cold_tune_persists_and_second_call_hits() {
        let cache = tmp_cache("roundtrip");
        let key = TuneKey::new(0xabc, 0xdef);
        let (cands, didx) = candidate_space(32, false, false, &[true, false]);
        let cold = tune_with_cache(&cache, &key, &cands, didx, 8, fake_score).unwrap();
        assert!(!cold.cache_hit);
        assert_eq!(cold.candidates_scored, cands.len());
        // Winner under the synthetic objective: contiguous @ 64, first
        // optimise value.
        assert_eq!(cold.plan.strategy, Strategy::Contiguous);
        assert_eq!(cold.plan.rows_per_tile, 64);
        assert!(cold.plan.optimise, "ties must resolve to the first enumerated value");
        assert!(cold.plan.modelled_cycles <= cold.plan.default_cycles);

        let hit = tune_with_cache(&cache, &key, &cands, didx, 8, |_| {
            panic!("a cache hit must not score candidates")
        })
        .unwrap();
        assert!(hit.cache_hit);
        assert_eq!(hit.candidates_scored, 0);
        assert_eq!(hit.plan, cold.plan);
        let _ = std::fs::remove_dir_all(&cache.dir);
    }

    #[test]
    fn mismatched_keys_and_corruption_read_as_misses() {
        let cache = tmp_cache("invalidate");
        let key = TuneKey::new(1, 2);
        let (cands, didx) = candidate_space(32, false, false, &[true]);
        let cold = tune_with_cache(&cache, &key, &cands, didx, 4, fake_score).unwrap();
        assert!(!cold.cache_hit);

        // Different fingerprint or solver key: miss.
        assert!(cache.load(&TuneKey::new(99, 2)).is_none());
        assert!(cache.load(&TuneKey::new(1, 99)).is_none());
        // Cost-model revision bump: miss (the file stays keyed to r1).
        let bumped = TuneKey { model_revision: key.model_revision + 1, ..key };
        assert!(cache.load(&bumped).is_none());
        // Torn/corrupt file: miss, then a re-tune overwrites it.
        std::fs::write(cache.path_of(&key), "{\"schema\": 1, \"trunc").unwrap();
        assert!(cache.load(&key).is_none());
        let again = tune_with_cache(&cache, &key, &cands, didx, 4, fake_score).unwrap();
        assert!(!again.cache_hit);
        assert_eq!(again.plan, cold.plan);
        assert!(cache.load(&key).is_some(), "re-tune must repair the entry");
        let _ = std::fs::remove_dir_all(&cache.dir);
    }

    #[test]
    fn concurrent_writers_never_produce_torn_reads() {
        // Satellite contract: N threads hammer `store`/`load` on the
        // same key; every `load` must return either a clean miss or a
        // plan one of the writers actually stored — never a torn read,
        // a parse error surfacing, or a panic.
        let cache = tmp_cache("concurrent");
        let key = TuneKey::new(0xfeed, 0xbeef);
        let variant = |i: u64| TunedPlan {
            strategy: Strategy::Contiguous,
            rows_per_tile: 16 + (i as usize % 8) * 16,
            optimise: i % 2 == 0,
            sell_c: 4,
            modelled_cycles: 1000 + i,
            default_cycles: 2000,
            candidates_scored: i,
        };
        let n_threads: u64 = 8;
        let iters: u64 = 40;
        let handles: Vec<_> = (0..n_threads)
            .map(|t| {
                let cache = cache.clone();
                std::thread::spawn(move || {
                    for i in 0..iters {
                        let id = t * iters + i;
                        cache.store(&key, &variant(id)).expect("store must not fail");
                        if let Some(seen) = cache.load(&key) {
                            // Whatever we read is exactly some writer's
                            // plan: the full struct round-trips, so a
                            // torn/interleaved file cannot sneak through
                            // (it would fail parse => a clean miss).
                            assert_eq!(
                                seen,
                                variant(seen.candidates_scored),
                                "torn read: {seen:?}"
                            );
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no writer thread may panic");
        }
        // The dust settles on one complete winner, and no temp litter
        // under a *different* writer id can shadow it.
        let final_plan = cache.load(&key).expect("a completed store must be visible");
        assert_eq!(final_plan, variant(final_plan.candidates_scored));
        let _ = std::fs::remove_dir_all(&cache.dir);
    }

    #[test]
    fn unscorable_candidates_are_skipped_not_fatal() {
        let cache = tmp_cache("skip");
        let key = TuneKey::new(3, 4);
        let (cands, didx) = candidate_space(32, false, true, &[true]);
        let out = tune_with_cache(&cache, &key, &cands, didx, 4, |c| {
            if c.strategy == Strategy::Grid3dAuto {
                Err("unfactorable".into())
            } else {
                fake_score(c)
            }
        })
        .unwrap();
        assert!(out.candidates_scored < cands.len());
        assert_ne!(out.plan.strategy, Strategy::Grid3dAuto);
        let _ = std::fs::remove_dir_all(&cache.dir);
    }

    #[test]
    fn sell_width_minimises_padded_bytes() {
        // Uniform tridiagonal rows: small slices pad least; the ladder
        // argmin must beat (or match) every other ladder entry.
        let a = tridiagonal(64);
        let (c, bytes) = pick_sell_c(&a, SELL_C_LADDER);
        assert!(SELL_C_LADDER.contains(&c));
        for &other in SELL_C_LADDER {
            assert!(bytes <= SellMatrix::from_csr(&a, other).device_bytes() as u64);
        }
    }

    #[test]
    fn solver_key_separates_parts() {
        assert_ne!(solver_key(&["ab", "c"]), solver_key(&["a", "bc"]));
        assert_ne!(solver_key(&["x"]), solver_key(&["x", ""]));
        assert_eq!(solver_key(&["cfg", "model"]), solver_key(&["cfg", "model"]));
    }

    #[test]
    fn keys_from_different_backends_never_collide() {
        // The autotuner ends every solver-key part list with a
        // `backend:<family>` component (see `graphene_core::autotune`);
        // the same matrix + config tuned for another backend must hash to
        // a different key, a different cache file, and a cache miss.
        let shared = ["{\"type\":\"bi_cg_stab\"}", "model:1x4x6:mem65536:clk1330000000"];
        let mut keys = Vec::new();
        for family in ["backend:ipu-sim", "backend:cpu", "backend:gpu-model"] {
            let parts: Vec<&str> = shared.iter().copied().chain([family]).collect();
            keys.push(TuneKey::new(0xf00d, solver_key(&parts)));
        }
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i].solver_key, keys[j].solver_key);
                assert_ne!(keys[i].file_name(), keys[j].file_name());
            }
        }

        // And through the cache itself: a plan stored under the ipu-sim
        // key reads back only under that key.
        let cache = tmp_cache("backend-keys");
        let (cands, didx) = candidate_space(32, false, false, &[true]);
        let cold = tune_with_cache(&cache, &keys[0], &cands, didx, 4, fake_score).unwrap();
        assert!(!cold.cache_hit);
        assert!(cache.load(&keys[0]).is_some());
        assert!(cache.load(&keys[1]).is_none(), "cpu key must miss the ipu-sim plan");
        assert!(cache.load(&keys[2]).is_none(), "gpu-model key must miss the ipu-sim plan");
        let _ = std::fs::remove_dir_all(&cache.dir);
    }
}
