//! The base-float abstraction the double-word algorithms are generic over.

use core::fmt::{Debug, Display};
use core::ops::{Add, Div, Mul, Neg, Sub};

/// A machine floating-point type usable as one word of a double-word number.
///
/// All constants required by the error-free transformations (the Dekker
/// splitter, precision, epsilon) are associated constants, so they are
/// resolved at compile time for any base type — mirroring the TWOFLOAT C++
/// library's `constexpr` constant derivation.
pub trait FloatBase:
    Copy
    + PartialOrd
    + PartialEq
    + Debug
    + Display
    + Default
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + Send
    + Sync
    + 'static
{
    /// Number of bits in the significand, including the implicit bit
    /// (24 for `f32`, 53 for `f64`).
    const MANTISSA_DIGITS: u32;
    /// Machine epsilon (distance from 1.0 to the next representable value).
    const EPSILON: Self;
    const ZERO: Self;
    const ONE: Self;
    const TWO: Self;
    /// Dekker's splitter: `2^ceil(p/2) + 1`. Used by the FMA-free
    /// `two_prod` fallback.
    const SPLITTER: Self;

    fn abs(self) -> Self;
    fn sqrt(self) -> Self;
    /// Fused multiply-add `self * b + c`, rounded once.
    fn fma(self, b: Self, c: Self) -> Self;
    fn is_finite(self) -> bool;
    fn is_nan(self) -> bool;
    fn to_f64(self) -> f64;
    fn from_f64(v: f64) -> Self;
    fn max(self, other: Self) -> Self;
    fn min(self, other: Self) -> Self;
}

impl FloatBase for f32 {
    const MANTISSA_DIGITS: u32 = 24;
    const EPSILON: Self = f32::EPSILON;
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const TWO: Self = 2.0;
    // 2^12 + 1
    const SPLITTER: Self = 4097.0;

    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline(always)]
    fn fma(self, b: Self, c: Self) -> Self {
        f32::mul_add(self, b, c)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline(always)]
    fn is_nan(self) -> bool {
        f32::is_nan(self)
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }
    #[inline(always)]
    fn min(self, other: Self) -> Self {
        f32::min(self, other)
    }
}

impl FloatBase for f64 {
    const MANTISSA_DIGITS: u32 = 53;
    const EPSILON: Self = f64::EPSILON;
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const TWO: Self = 2.0;
    // 2^27 + 1
    const SPLITTER: Self = 134_217_729.0;

    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline(always)]
    fn fma(self, b: Self, c: Self) -> Self {
        f64::mul_add(self, b, c)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline(always)]
    fn is_nan(self) -> bool {
        f64::is_nan(self)
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
    #[inline(always)]
    fn min(self, other: Self) -> Self {
        f64::min(self, other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitter_matches_formula() {
        // splitter = 2^ceil(p/2) + 1
        assert_eq!(f32::SPLITTER, (1u32 << 12) as f32 + 1.0);
        assert_eq!(f64::SPLITTER, (1u64 << 27) as f64 + 1.0);
    }

    #[test]
    fn fma_is_single_rounding() {
        // (1 + eps) * (1 + eps) = 1 + 2eps + eps^2; plain mul loses eps^2,
        // fma with c = -(1 + 2eps) recovers it.
        let a = 1.0f32 + f32::EPSILON;
        let exact_lost = a.fma(a, -(1.0 + 2.0 * f32::EPSILON));
        assert_eq!(exact_lost, f32::EPSILON * f32::EPSILON);
    }

    #[test]
    fn f64_roundtrip() {
        let v = 1.234567890123_f64;
        assert_eq!(f64::from_f64(v).to_f64(), v);
        assert_eq!((v as f32).to_f64(), v as f32 as f64);
    }
}
