//! Error-free transformations (EFTs).
//!
//! The primitive building blocks of all double-word algorithms: each returns
//! a pair `(result, error)` such that `result + error` equals the exact
//! mathematical value, with `result` the correctly rounded sum/product.

use crate::base::FloatBase;

/// Knuth's `TwoSum`: `(s, e)` with `s = fl(a + b)` and `s + e = a + b`
/// exactly. 6 flops, no precondition on magnitudes.
#[inline(always)]
pub fn two_sum<F: FloatBase>(a: F, b: F) -> (F, F) {
    let s = a + b;
    let bb = s - a;
    let e = (a - (s - bb)) + (b - bb);
    (s, e)
}

/// Dekker's `Fast2Sum`: like [`two_sum`] but only 3 flops; requires
/// `|a| >= |b|` (or `a == 0`) for the error term to be exact.
#[inline(always)]
pub fn fast_two_sum<F: FloatBase>(a: F, b: F) -> (F, F) {
    let s = a + b;
    let e = b - (s - a);
    (s, e)
}

/// `TwoDiff`: `(d, e)` with `d = fl(a - b)` and `d + e = a - b` exactly.
#[inline(always)]
pub fn two_diff<F: FloatBase>(a: F, b: F) -> (F, F) {
    let d = a - b;
    let bb = a - d;
    let e = (a - (d + bb)) + (bb - b);
    (d, e)
}

/// `TwoProd` using a fused multiply-add: `(p, e)` with `p = fl(a * b)` and
/// `p + e = a * b` exactly. 2 flops on FMA hardware; the IPU (and every
/// host this simulator runs on) provides FMA.
#[inline(always)]
pub fn two_prod<F: FloatBase>(a: F, b: F) -> (F, F) {
    let p = a * b;
    let e = a.fma(b, -p);
    (p, e)
}

/// Dekker's FMA-free `TwoProd`, kept as a reference implementation and to
/// cross-check [`two_prod`] (17 flops).
#[inline]
pub fn two_prod_dekker<F: FloatBase>(a: F, b: F) -> (F, F) {
    let p = a * b;
    let (ah, al) = split(a);
    let (bh, bl) = split(b);
    let e = ((ah * bh - p) + ah * bl + al * bh) + al * bl;
    (p, e)
}

/// Dekker's `Split`: splits `a` into high and low halves, each with at most
/// `ceil(p/2)` significant bits, so their products are exact.
#[inline]
pub fn split<F: FloatBase>(a: F) -> (F, F) {
    let c = F::SPLITTER * a;
    let hi = c - (c - a);
    let lo = a - hi;
    (hi, lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sum_recovers_error() {
        let a = 1.0f32;
        let b = 1e-8f32; // fully absorbed by rounding in f32
        let (s, e) = two_sum(a, b);
        assert_eq!(s, 1.0);
        assert_eq!(e, 1e-8);
    }

    #[test]
    fn fast_two_sum_matches_two_sum_when_ordered() {
        let cases: &[(f32, f32)] = &[(1.0, 1e-7), (1e5, -3.25), (2.5, 2.5), (-8.0, 0.125)];
        for &(a, b) in cases {
            let (s1, e1) = two_sum(a, b);
            let (s2, e2) = fast_two_sum(a, b);
            assert_eq!(s1, s2);
            assert_eq!(e1, e2, "a={a} b={b}");
        }
    }

    #[test]
    fn two_diff_is_exact() {
        let a = 1.0f32 + f32::EPSILON;
        let b = f32::EPSILON * 0.25; // exact power-of-two fraction
        let (d, e) = two_diff(a, b);
        let exact = a as f64 - b as f64;
        assert_eq!(d as f64 + e as f64, exact);
    }

    #[test]
    fn two_prod_fma_matches_dekker() {
        let cases: &[(f32, f32)] = &[
            (1.0 + f32::EPSILON, 1.0 + f32::EPSILON),
            (3.25159, 2.91828),
            (1e10, 1e-12),
            (-123.456, 0.001953125),
        ];
        for &(a, b) in cases {
            let (p1, e1) = two_prod(a, b);
            let (p2, e2) = two_prod_dekker(a, b);
            assert_eq!(p1, p2);
            assert_eq!(e1, e2, "a={a} b={b}");
        }
    }

    #[test]
    fn two_prod_is_exact_in_f64() {
        // The exact product of two f32 values fits in f64, so p + e == a*b.
        let a = 1.2345678f32;
        let b = 8.7654321f32;
        let (p, e) = two_prod(a, b);
        assert_eq!(p as f64 + e as f64, a as f64 * b as f64);
    }

    #[test]
    fn split_halves_are_exact() {
        let a = 1.9999999f32;
        let (hi, lo) = split(a);
        assert_eq!(hi + lo, a);
        // Each half has at most 12 significant bits -> hi*hi is exact.
        let p = hi as f64 * hi as f64;
        assert_eq!((hi * hi) as f64, p);
    }
}
