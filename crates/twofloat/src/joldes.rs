//! Double-word algorithms of Joldes, Muller and Popescu.
//!
//! "Tight and rigorous error bounds for basic building blocks of double-word
//! arithmetic", ACM TOMS 44(2), 2017. Algorithm numbers in the doc comments
//! refer to that paper. All results are *normalised* pairs (`|lo| <=
//! ulp(hi)/2`), which is what makes consecutive operations stable — the
//! property the IPU paper found "crucial for overall solver performance" in
//! Mixed-Precision Iterative Refinement.
//!
//! Inputs are `(hi, lo)` pairs assumed normalised; single-word operands are
//! plain `F`.

use crate::base::FloatBase;
use crate::eft::{fast_two_sum, two_prod, two_sum};

/// Algorithm 4 (`DWPlusFP`): double-word + single word. 10 flops,
/// relative error ≤ 2u².
#[inline]
pub fn add_dw_f<F: FloatBase>(xh: F, xl: F, y: F) -> (F, F) {
    let (sh, sl) = two_sum(xh, y);
    let v = xl + sl;
    fast_two_sum(sh, v)
}

/// Algorithm 6 (`AccurateDWPlusDW`): double-word + double-word. 20 flops,
/// relative error ≤ 3u² + 13u³.
#[inline]
pub fn add_dw_dw<F: FloatBase>(xh: F, xl: F, yh: F, yl: F) -> (F, F) {
    let (sh, sl) = two_sum(xh, yh);
    let (th, tl) = two_sum(xl, yl);
    let c = sl + th;
    let (vh, vl) = fast_two_sum(sh, c);
    let w = tl + vl;
    fast_two_sum(vh, w)
}

/// Algorithm 5 (`SloppyDWPlusDW`): cheaper addition (11 flops) whose error
/// is only bounded when both operands have the same sign. Provided for the
/// ablation benchmarks; not used by the solvers.
#[inline]
pub fn add_dw_dw_sloppy<F: FloatBase>(xh: F, xl: F, yh: F, yl: F) -> (F, F) {
    let (sh, sl) = two_sum(xh, yh);
    let v = xl + yl;
    let w = sl + v;
    fast_two_sum(sh, w)
}

/// Double-word − single word, via [`add_dw_f`] with a negated operand.
#[inline]
pub fn sub_dw_f<F: FloatBase>(xh: F, xl: F, y: F) -> (F, F) {
    add_dw_f(xh, xl, -y)
}

/// Double-word − double-word, via [`add_dw_dw`] with negated operands.
#[inline]
pub fn sub_dw_dw<F: FloatBase>(xh: F, xl: F, yh: F, yl: F) -> (F, F) {
    add_dw_dw(xh, xl, -yh, -yl)
}

/// Algorithm 9 (`DWTimesFP3`, FMA version): double-word × single word.
/// 6 flops with FMA, relative error ≤ 2u².
#[inline]
pub fn mul_dw_f<F: FloatBase>(xh: F, xl: F, y: F) -> (F, F) {
    let (ch, cl1) = two_prod(xh, y);
    let cl3 = xl.fma(y, cl1);
    fast_two_sum(ch, cl3)
}

/// Algorithm 12 (`DWTimesDW2`, FMA version): double-word × double-word.
/// 9 flops with FMA, relative error ≤ 5u².
#[inline]
pub fn mul_dw_dw<F: FloatBase>(xh: F, xl: F, yh: F, yl: F) -> (F, F) {
    let (ch, cl1) = two_prod(xh, yh);
    let tl = xh * yl;
    let cl2 = xl.fma(yh, tl);
    let cl3 = cl1 + cl2;
    fast_two_sum(ch, cl3)
}

/// Algorithm 15 (`DWDivFP3`): double-word ÷ single word. ~10 flops,
/// relative error ≤ 3u².
#[inline]
pub fn div_dw_f<F: FloatBase>(xh: F, xl: F, y: F) -> (F, F) {
    let th = xh / y;
    let (ph, pl) = two_prod(th, y);
    let dh = xh - ph;
    let dt = dh - pl;
    let d = dt + xl;
    let tl = d / y;
    fast_two_sum(th, tl)
}

/// Algorithm 17 (`DWDivDW2`): double-word ÷ double-word. Relative error
/// ≤ 15u² + 56u³.
#[inline]
pub fn div_dw_dw<F: FloatBase>(xh: F, xl: F, yh: F, yl: F) -> (F, F) {
    let th = xh / yh;
    // r = x - y * th, computed exactly enough: y*th as DWTimesFP1.
    let (rh, rl) = mul_dw_f(yh, yl, th);
    let (ph, pl) = two_sum(xh, -rh);
    let dl = (xl - rl) + pl;
    let d = ph + dl;
    let tl = d / yh;
    fast_two_sum(th, tl)
}

/// Square root of a double-word number (Karp–Markstein style refinement of
/// the single-word square root; error a few u²).
#[inline]
pub fn sqrt_dw<F: FloatBase>(xh: F, xl: F) -> (F, F) {
    if xh == F::ZERO {
        return (F::ZERO, F::ZERO);
    }
    let sh = xh.sqrt();
    // Residual x - sh^2 in double precision of the pair.
    let (ph, pl) = two_prod(sh, sh);
    let (dh, dl) = add_dw_dw(xh, xl, -ph, -pl);
    // Newton correction: (x - sh^2) / (2 sh)
    let corr = (dh + dl) / (sh + sh);
    fast_two_sum(sh, corr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dw(v: f64) -> (f32, f32) {
        let hi = v as f32;
        let lo = (v - hi as f64) as f32;
        (hi, lo)
    }

    fn val(p: (f32, f32)) -> f64 {
        p.0 as f64 + p.1 as f64
    }

    // f32 double-word carries ~48 bits; f64 reference carries 53, so
    // comparisons are meaningful to ~1e-13 relative.
    const TOL: f64 = 1e-12;

    fn assert_close(got: f64, want: f64) {
        let denom = want.abs().max(1e-300);
        assert!(((got - want) / denom).abs() < TOL, "got {got}, want {want}");
    }

    #[test]
    fn add_dw_dw_precision() {
        let x = 1.0 + 1e-9;
        let y = 3.0 - 2e-9;
        let (xh, xl) = dw(x);
        let (yh, yl) = dw(y);
        assert_close(val(add_dw_dw(xh, xl, yh, yl)), x + y);
    }

    #[test]
    fn add_dw_f_precision() {
        let x = 123.456789012;
        let (xh, xl) = dw(x);
        let y = 0.25f32;
        assert_close(val(add_dw_f(xh, xl, y)), x + y as f64);
    }

    #[test]
    fn mul_dw_dw_precision() {
        let x = core::f64::consts::PI;
        let y = core::f64::consts::E;
        let (xh, xl) = dw(x);
        let (yh, yl) = dw(y);
        // dw(x) only carries ~48 bits of pi, so compare against the product
        // of the truncated values.
        let want = val((xh, xl)) * val((yh, yl));
        assert_close(val(mul_dw_dw(xh, xl, yh, yl)), want);
    }

    #[test]
    fn div_dw_dw_precision() {
        let x = 1.0 + 1e-10;
        let y = 3.0;
        let (xh, xl) = dw(x);
        let (yh, yl) = dw(y);
        let want = val((xh, xl)) / val((yh, yl));
        assert_close(val(div_dw_dw(xh, xl, yh, yl)), want);
    }

    #[test]
    fn div_dw_f_precision() {
        let x = 2.0 - 1e-9;
        let (xh, xl) = dw(x);
        assert_close(val(div_dw_f(xh, xl, 7.0f32)), val((xh, xl)) / 7.0);
    }

    #[test]
    fn sqrt_dw_precision() {
        let x = 2.0;
        let (xh, xl) = dw(x);
        assert_close(val(sqrt_dw(xh, xl)), core::f64::consts::SQRT_2);
    }

    #[test]
    fn sqrt_of_zero() {
        assert_eq!(sqrt_dw(0.0f32, 0.0f32), (0.0, 0.0));
    }

    #[test]
    fn results_are_normalised() {
        let (xh, xl) = dw(1.0 + 1e-9);
        let (yh, yl) = dw(core::f64::consts::PI);
        for (h, l) in
            [add_dw_dw(xh, xl, yh, yl), mul_dw_dw(xh, xl, yh, yl), div_dw_dw(xh, xl, yh, yl)]
        {
            // Normalised: hi absorbs lo exactly.
            assert_eq!(h + l, h, "pair ({h}, {l}) not normalised");
        }
    }

    #[test]
    fn cancellation_keeps_precision() {
        // (1 + 1e-9) - 1 should recover 1e-9 to double-word accuracy.
        let (xh, xl) = dw(1.0 + 1e-9);
        let r = sub_dw_f(xh, xl, 1.0f32);
        assert_close(val(r), val((xh, xl)) - 1.0);
    }
}
