//! Pair arithmetic of Lange and Rump.
//!
//! "Faithfully rounded floating-point computations", ACM TOMS 46(3), 2020.
//! Pair arithmetic computes on unevaluated sums like double-word arithmetic
//! but *omits the final renormalisation* (`fast_two_sum`) after each
//! operation. Individual results are faithfully rounded, but the error grows
//! with chain length — which is why the IPU paper selects the Joldes
//! algorithms for iterative refinement and keeps these as the fast
//! alternative (7–25 flops per operation).

use crate::base::FloatBase;
use crate::eft::{two_prod, two_sum};

/// Pair + single word (no renormalisation): 7 flops.
#[inline]
pub fn add_dw_f<F: FloatBase>(xh: F, xl: F, y: F) -> (F, F) {
    let (sh, sl) = two_sum(xh, y);
    (sh, sl + xl)
}

/// Pair + pair (no renormalisation): 8 flops.
#[inline]
pub fn add_dw_dw<F: FloatBase>(xh: F, xl: F, yh: F, yl: F) -> (F, F) {
    let (sh, sl) = two_sum(xh, yh);
    (sh, sl + (xl + yl))
}

/// Pair − single word.
#[inline]
pub fn sub_dw_f<F: FloatBase>(xh: F, xl: F, y: F) -> (F, F) {
    add_dw_f(xh, xl, -y)
}

/// Pair − pair.
#[inline]
pub fn sub_dw_dw<F: FloatBase>(xh: F, xl: F, yh: F, yl: F) -> (F, F) {
    add_dw_dw(xh, xl, -yh, -yl)
}

/// Pair × single word (no renormalisation): 4 flops with FMA.
#[inline]
pub fn mul_dw_f<F: FloatBase>(xh: F, xl: F, y: F) -> (F, F) {
    let (ph, pl) = two_prod(xh, y);
    (ph, xl.fma(y, pl))
}

/// Pair × pair (no renormalisation): 7 flops with FMA.
#[inline]
pub fn mul_dw_dw<F: FloatBase>(xh: F, xl: F, yh: F, yl: F) -> (F, F) {
    let (ph, pl) = two_prod(xh, yh);
    let t = xh.fma(yl, pl);
    (ph, xl.fma(yh, t))
}

/// Pair ÷ single word (no renormalisation).
#[inline]
pub fn div_dw_f<F: FloatBase>(xh: F, xl: F, y: F) -> (F, F) {
    let qh = xh / y;
    let r = (-qh).fma(y, xh); // exact residual of the leading quotient
    let ql = (r + xl) / y;
    (qh, ql)
}

/// Pair ÷ pair (no renormalisation).
#[inline]
pub fn div_dw_dw<F: FloatBase>(xh: F, xl: F, yh: F, yl: F) -> (F, F) {
    let qh = xh / yh;
    // Residual x - q*y evaluated with one EFT.
    let (ph, pl) = two_prod(qh, yh);
    let r = ((xh - ph) - pl) + xl - qh * yl;
    (qh, r / yh)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dw(v: f64) -> (f32, f32) {
        let hi = v as f32;
        let lo = (v - hi as f64) as f32;
        (hi, lo)
    }

    fn val(p: (f32, f32)) -> f64 {
        p.0 as f64 + p.1 as f64
    }

    // Pair arithmetic is faithfully rounded per-op; tolerate a few u^2.
    const TOL: f64 = 1e-11;

    fn assert_close(got: f64, want: f64) {
        let denom = want.abs().max(1e-300);
        assert!(((got - want) / denom).abs() < TOL, "got {got}, want {want}");
    }

    #[test]
    fn single_ops_are_faithful() {
        let (xh, xl) = dw(1.0 + 3e-9);
        let (yh, yl) = dw(7.0 - 5e-10);
        let x = val((xh, xl));
        let y = val((yh, yl));
        assert_close(val(add_dw_dw(xh, xl, yh, yl)), x + y);
        assert_close(val(sub_dw_dw(xh, xl, yh, yl)), x - y);
        assert_close(val(mul_dw_dw(xh, xl, yh, yl)), x * y);
        assert_close(val(div_dw_dw(xh, xl, yh, yl)), x / y);
        assert_close(val(mul_dw_f(xh, xl, 3.0)), x * 3.0);
        assert_close(val(div_dw_f(xh, xl, 3.0)), x / 3.0);
    }

    #[test]
    fn error_grows_faster_than_joldes_on_chains() {
        // Sum 1e5 values of pi/1e5; the Lange-Rump chain should lose at
        // least as much precision as the renormalising Joldes chain.
        let term = dw(core::f64::consts::PI / 1e5);
        let mut lr = (0.0f32, 0.0f32);
        let mut jo = (0.0f32, 0.0f32);
        for _ in 0..100_000 {
            lr = add_dw_dw(lr.0, lr.1, term.0, term.1);
            jo = crate::joldes::add_dw_dw(jo.0, jo.1, term.0, term.1);
        }
        let want = val(term) * 1e5;
        let err_lr = (val(lr) - want).abs();
        let err_jo = (val(jo) - want).abs();
        assert!(err_jo <= err_lr + 1e-13, "joldes {err_jo} vs lange-rump {err_lr}");
        // And both are far better than plain f32 accumulation.
        let mut naive = 0.0f32;
        for _ in 0..100_000 {
            naive += term.0;
        }
        assert!(err_lr < (naive as f64 - want).abs());
    }
}
