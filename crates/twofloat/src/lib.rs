//! Double-word floating-point arithmetic.
//!
//! A *double-word* number represents a value as the unevaluated sum of two
//! machine floats `hi + lo` with `|lo| <= ulp(hi)/2` (the pair is
//! *normalised*). On hardware without native double precision — such as the
//! GraphCore IPU targeted by the paper this crate reproduces — a pair of
//! `f32`s provides roughly 13–14 decimal digits of precision at a small
//! multiple of the single-precision operation cost, compared to the ~180x
//! slowdown of fully emulated IEEE double precision.
//!
//! Two arithmetic families are implemented, following the paper's §III-D:
//!
//! * [`joldes`] — the tight-and-rigorous algorithms of Joldes, Muller and
//!   Popescu (ACM TOMS 44(2), 2017). Slower (20–34 flops per operation) but
//!   with per-operation relative error bounds of a few `u²`, which the paper
//!   found necessary for the stability of Mixed-Precision Iterative
//!   Refinement.
//! * [`lange_rump`] — the faithfully-rounded *pair arithmetic* of Lange and
//!   Rump (ACM TOMS 46(3), 2020), which omits normalisation steps (7–25
//!   flops) at the cost of error growth across chained operations.
//!
//! The main type [`TwoFloat`] uses the Joldes algorithms for its operator
//! overloads (the paper's default); [`FastTwoFloat`] wraps the Lange–Rump
//! pair arithmetic. Both are generic over the base float via [`FloatBase`].
//!
//! ```
//! use twofloat::TwoFloat;
//!
//! // 1 + 1e-8 is not representable in f32, but is as a double-word:
//! let x = TwoFloat::<f32>::from_f64(1.0 + 1e-8);
//! assert_ne!(x.to_f64(), 1.0);
//! assert!((x.to_f64() - (1.0 + 1e-8)).abs() < 1e-14);
//! ```

mod base;
mod eft;
pub mod joldes;
pub mod lange_rump;
mod softdouble;
mod twofloat;

pub use base::FloatBase;
pub use eft::{fast_two_sum, split, two_diff, two_prod, two_prod_dekker, two_sum};
pub use softdouble::SoftDouble;
pub use twofloat::{FastTwoFloat, TwoFloat};

/// Double-word over `f32`: the configuration used on the IPU.
pub type TwoF32 = TwoFloat<f32>;
/// Double-word over `f64` (quad-like precision on conventional hardware).
pub type TwoF64 = TwoFloat<f64>;
