//! Software-emulated IEEE double precision.
//!
//! The IPU has no f64 hardware; the Poplar toolchain emulates it via
//! compiler-rt soft-float routines (~1080–2520 cycles per operation, paper
//! Table I). Numerically the emulation is bit-exact IEEE binary64, so on the
//! host we represent it by a transparent `f64` newtype. The *cost* of soft
//! double operations is charged by the simulator's cycle model
//! (`ipu_sim::cost`), not here — this type exists so the DSL type system can
//! distinguish "emulated double" from data that could never exist on the
//! device, and so conversions are explicit.

use core::cmp::Ordering;
use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// IEEE binary64 value emulated in software on the device.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SoftDouble(pub f64);

impl SoftDouble {
    pub const ZERO: Self = SoftDouble(0.0);
    pub const ONE: Self = SoftDouble(1.0);

    #[inline]
    pub fn from_f32(v: f32) -> Self {
        SoftDouble(v as f64)
    }

    #[inline]
    pub fn to_f32(self) -> f32 {
        self.0 as f32
    }

    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0
    }

    #[inline]
    pub fn abs(self) -> Self {
        SoftDouble(self.0.abs())
    }

    #[inline]
    pub fn sqrt(self) -> Self {
        SoftDouble(self.0.sqrt())
    }

    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl From<f64> for SoftDouble {
    fn from(v: f64) -> Self {
        SoftDouble(v)
    }
}

impl From<SoftDouble> for f64 {
    fn from(v: SoftDouble) -> f64 {
        v.0
    }
}

impl fmt::Display for SoftDouble {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl PartialOrd for SoftDouble {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.0.partial_cmp(&other.0)
    }
}

macro_rules! op {
    ($trait:ident, $m:ident, $op:tt) => {
        impl $trait for SoftDouble {
            type Output = Self;
            #[inline]
            fn $m(self, rhs: Self) -> Self {
                SoftDouble(self.0 $op rhs.0)
            }
        }
    };
}
op!(Add, add, +);
op!(Sub, sub, -);
op!(Mul, mul, *);
op!(Div, div, /);

impl Neg for SoftDouble {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        SoftDouble(-self.0)
    }
}

impl AddAssign for SoftDouble {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}
impl SubAssign for SoftDouble {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 -= rhs.0;
    }
}
impl MulAssign for SoftDouble {
    fn mul_assign(&mut self, rhs: Self) {
        self.0 *= rhs.0;
    }
}
impl DivAssign for SoftDouble {
    fn div_assign(&mut self, rhs: Self) {
        self.0 /= rhs.0;
    }
}

impl Sum for SoftDouble {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        SoftDouble(iter.map(|x| x.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_native_f64() {
        let a = SoftDouble(1.0 + 1e-12);
        let b = SoftDouble(3.0);
        assert_eq!((a * b).0, (1.0 + 1e-12) * 3.0);
        assert_eq!((a / b).0, (1.0 + 1e-12) / 3.0);
        assert_eq!((a + b).0, 4.0 + 1e-12);
        assert_eq!((a - b).0, (1.0 + 1e-12) - 3.0);
    }

    #[test]
    fn f32_roundtrip() {
        let x = SoftDouble::from_f32(1.25);
        assert_eq!(x.to_f32(), 1.25);
        assert_eq!(x.to_f64(), 1.25);
    }

    #[test]
    fn precision_exceeds_double_word() {
        // SoftDouble keeps all 53 bits; f32 double-word keeps ~48.
        let v = 1.0 + f64::EPSILON;
        assert_ne!(SoftDouble(v).0, 1.0);
    }
}
