//! The `TwoFloat` / `FastTwoFloat` wrapper types with operator overloads.

use core::cmp::Ordering;
use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::base::FloatBase;
use crate::eft::{fast_two_sum, two_sum};
use crate::{joldes, lange_rump};

/// A double-word number `hi + lo` using the Joldes et al. algorithms
/// (the paper's default: slower, tightly bounded error, always normalised).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TwoFloat<F: FloatBase> {
    hi: F,
    lo: F,
}

/// A double-word number using the Lange–Rump pair arithmetic (faster,
/// faithfully rounded per-op, error grows over chains).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FastTwoFloat<F: FloatBase> {
    hi: F,
    lo: F,
}

macro_rules! common_impl {
    ($ty:ident, $alg:ident) => {
        impl<F: FloatBase> $ty<F> {
            pub const ZERO: Self = Self { hi: F::ZERO, lo: F::ZERO };
            pub const ONE: Self = Self { hi: F::ONE, lo: F::ZERO };

            /// Construct from a raw (hi, lo) pair. The caller is responsible
            /// for `hi + lo` being the intended value; use [`Self::normalize`]
            /// if the pair may overlap.
            #[inline]
            pub fn from_parts(hi: F, lo: F) -> Self {
                Self { hi, lo }
            }

            /// Construct from a single word (exact).
            #[inline]
            pub fn from_f(hi: F) -> Self {
                Self { hi, lo: F::ZERO }
            }

            /// Construct from an `f64`, splitting into hi (rounded) and lo
            /// (rounding error). Exact when `F = f64`.
            #[inline]
            pub fn from_f64(v: f64) -> Self {
                let hi = F::from_f64(v);
                let lo = F::from_f64(v - hi.to_f64());
                Self { hi, lo }
            }

            /// The value as `f64` (`hi + lo` evaluated in f64 — exact for
            /// `F = f32` pairs since 24+24 < 53 bits... up to alignment).
            #[inline]
            pub fn to_f64(self) -> f64 {
                self.hi.to_f64() + self.lo.to_f64()
            }

            #[inline]
            pub fn hi(self) -> F {
                self.hi
            }

            #[inline]
            pub fn lo(self) -> F {
                self.lo
            }

            /// Renormalise so that `|lo| <= ulp(hi)/2`.
            #[inline]
            pub fn normalize(self) -> Self {
                let (hi, lo) = if self.hi.abs() >= self.lo.abs() {
                    fast_two_sum(self.hi, self.lo)
                } else {
                    two_sum(self.hi, self.lo)
                };
                Self { hi, lo }
            }

            #[inline]
            pub fn abs(self) -> Self {
                if self.hi < F::ZERO || (self.hi == F::ZERO && self.lo < F::ZERO) {
                    -self
                } else {
                    self
                }
            }

            #[inline]
            pub fn is_finite(self) -> bool {
                self.hi.is_finite() && self.lo.is_finite()
            }

            #[inline]
            pub fn is_nan(self) -> bool {
                self.hi.is_nan() || self.lo.is_nan()
            }
        }

        impl<F: FloatBase> From<F> for $ty<F> {
            fn from(v: F) -> Self {
                Self::from_f(v)
            }
        }

        impl<F: FloatBase> fmt::Display for $ty<F> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.to_f64())
            }
        }

        impl<F: FloatBase> Neg for $ty<F> {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self { hi: -self.hi, lo: -self.lo }
            }
        }

        impl<F: FloatBase> PartialOrd for $ty<F> {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                match self.hi.partial_cmp(&other.hi) {
                    Some(Ordering::Equal) => self.lo.partial_cmp(&other.lo),
                    ord => ord,
                }
            }
        }

        impl<F: FloatBase> Add for $ty<F> {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                let (hi, lo) = $alg::add_dw_dw(self.hi, self.lo, rhs.hi, rhs.lo);
                Self { hi, lo }
            }
        }

        impl<F: FloatBase> Sub for $ty<F> {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                let (hi, lo) = $alg::sub_dw_dw(self.hi, self.lo, rhs.hi, rhs.lo);
                Self { hi, lo }
            }
        }

        impl<F: FloatBase> Mul for $ty<F> {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: Self) -> Self {
                let (hi, lo) = $alg::mul_dw_dw(self.hi, self.lo, rhs.hi, rhs.lo);
                Self { hi, lo }
            }
        }

        impl<F: FloatBase> Div for $ty<F> {
            type Output = Self;
            #[inline]
            fn div(self, rhs: Self) -> Self {
                let (hi, lo) = $alg::div_dw_dw(self.hi, self.lo, rhs.hi, rhs.lo);
                Self { hi, lo }
            }
        }

        impl<F: FloatBase> Add<F> for $ty<F> {
            type Output = Self;
            #[inline]
            fn add(self, rhs: F) -> Self {
                let (hi, lo) = $alg::add_dw_f(self.hi, self.lo, rhs);
                Self { hi, lo }
            }
        }

        impl<F: FloatBase> Sub<F> for $ty<F> {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: F) -> Self {
                let (hi, lo) = $alg::sub_dw_f(self.hi, self.lo, rhs);
                Self { hi, lo }
            }
        }

        impl<F: FloatBase> Mul<F> for $ty<F> {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: F) -> Self {
                let (hi, lo) = $alg::mul_dw_f(self.hi, self.lo, rhs);
                Self { hi, lo }
            }
        }

        impl<F: FloatBase> Div<F> for $ty<F> {
            type Output = Self;
            #[inline]
            fn div(self, rhs: F) -> Self {
                let (hi, lo) = $alg::div_dw_f(self.hi, self.lo, rhs);
                Self { hi, lo }
            }
        }

        impl<F: FloatBase> AddAssign for $ty<F> {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                *self = *self + rhs;
            }
        }
        impl<F: FloatBase> SubAssign for $ty<F> {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                *self = *self - rhs;
            }
        }
        impl<F: FloatBase> MulAssign for $ty<F> {
            #[inline]
            fn mul_assign(&mut self, rhs: Self) {
                *self = *self * rhs;
            }
        }
        impl<F: FloatBase> DivAssign for $ty<F> {
            #[inline]
            fn div_assign(&mut self, rhs: Self) {
                *self = *self / rhs;
            }
        }

        impl<F: FloatBase> Sum for $ty<F> {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, |acc, x| acc + x)
            }
        }
    };
}

common_impl!(TwoFloat, joldes);
common_impl!(FastTwoFloat, lange_rump);

impl<F: FloatBase> TwoFloat<F> {
    /// Double-word square root (Joldes-style Newton refinement).
    #[inline]
    pub fn sqrt(self) -> Self {
        let (hi, lo) = joldes::sqrt_dw(self.hi, self.lo);
        Self { hi, lo }
    }

    /// Reinterpret as the fast (Lange–Rump) representation.
    #[inline]
    pub fn into_fast(self) -> FastTwoFloat<F> {
        FastTwoFloat::from_parts(self.hi, self.lo)
    }
}

impl<F: FloatBase> FastTwoFloat<F> {
    /// Normalise and reinterpret as the accurate (Joldes) representation.
    #[inline]
    pub fn into_accurate(self) -> TwoFloat<F> {
        let n = self.normalize();
        TwoFloat::from_parts(n.hi, n.lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type T = TwoFloat<f32>;

    #[test]
    fn arithmetic_identities() {
        let x = T::from_f64(1.0 + 1e-9);
        assert_eq!((x + T::ZERO).to_f64(), x.to_f64());
        assert_eq!((x * T::ONE).to_f64(), x.to_f64());
        let diff = (x / x - T::ONE).to_f64().abs();
        assert!(diff < 1e-13, "x/x = 1 violated by {diff}");
    }

    #[test]
    fn leibniz_pi_reaches_dw_precision() {
        // The paper's Figure 1 example: pi from the Leibniz series, summed
        // pairwise in double-word. Use the accelerated average of partial
        // sums trick? No — just check the error matches theory ~1/n.
        let n = 100_000u32;
        let mut sum = T::ZERO;
        for i in 0..n {
            let sign = if i % 2 == 0 { 1.0f32 } else { -1.0f32 };
            let term = T::from_f(sign) / (2.0f32 * i as f32 + 1.0);
            sum += term;
        }
        let pi = sum.to_f64() * 4.0;
        // Truncation error of the series dominates: |err| ~ 1/n.
        assert!((pi - core::f64::consts::PI).abs() < 2.0 / n as f64);
    }

    #[test]
    fn mixed_word_ops() {
        let x = T::from_f64(10.0 + 1e-8);
        assert!(((x + 2.0f32).to_f64() - (12.0 + 1e-8)).abs() < 1e-14);
        assert!(((x - 2.0f32).to_f64() - (8.0 + 1e-8)).abs() < 1e-14);
        assert!(((x * 2.0f32).to_f64() - (20.0 + 2e-8)).abs() < 1e-13);
        assert!(((x / 2.0f32).to_f64() - (5.0 + 0.5e-8)).abs() < 1e-13);
    }

    #[test]
    fn ordering_uses_both_words() {
        let a = T::from_parts(1.0, 1e-12);
        let b = T::from_parts(1.0, 2e-12);
        assert!(a < b);
        assert!(b > a);
        assert!(T::from_f(0.5) < T::from_f(1.0));
    }

    #[test]
    fn abs_and_neg() {
        let x = T::from_f64(-3.25);
        assert_eq!(x.abs().to_f64(), 3.25);
        assert_eq!((-x).to_f64(), 3.25);
        assert_eq!(T::from_f64(0.5).abs().to_f64(), 0.5);
    }

    #[test]
    fn sum_iterator() {
        let total: T = (1..=100).map(|i| T::from_f(i as f32)).sum();
        assert_eq!(total.to_f64(), 5050.0);
    }

    #[test]
    fn normalize_overlapping_pair() {
        let x = T::from_parts(1.0, 1.0).normalize();
        assert_eq!(x.hi(), 2.0);
        assert_eq!(x.lo(), 0.0);
        // Reversed magnitudes are handled too.
        let y = T::from_parts(1e-8, 1.0).normalize();
        assert_eq!(y.to_f64() as f32, 1.0);
    }

    #[test]
    fn sqrt_squares_back() {
        for v in [2.0, 10.0, 1e-6, 12345.678] {
            let x = T::from_f64(v);
            let s = x.sqrt();
            let back = (s * s).to_f64();
            assert!((back - v).abs() < v * 1e-12, "sqrt({v})^2 = {back}");
        }
    }

    #[test]
    fn display_and_finiteness() {
        let x = T::from_f64(1.5);
        assert_eq!(format!("{x}"), "1.5");
        assert!(x.is_finite());
        assert!(!x.is_nan());
        let bad = T::from_parts(f32::NAN, 0.0);
        assert!(bad.is_nan());
        let inf = T::from_parts(f32::INFINITY, 0.0);
        assert!(!inf.is_finite());
    }

    #[test]
    fn fast_variant_sub_div_and_assign_ops() {
        let x = FastTwoFloat::<f32>::from_f64(10.0 + 1e-8);
        let y = FastTwoFloat::<f32>::from_f64(3.0);
        assert!(((x - y).to_f64() - (7.0 + 1e-8)).abs() < 1e-12);
        assert!(((x / y).to_f64() - (10.0 + 1e-8) / 3.0).abs() < 1e-11);
        let mut acc = T::ZERO;
        acc += T::from_f(2.0);
        acc *= T::from_f(3.0);
        acc -= T::from_f(1.0);
        acc /= T::from_f(5.0);
        assert_eq!(acc.to_f64(), 1.0);
    }

    #[test]
    fn f64_base_double_word_quad_like() {
        // TwoFloat<f64> carries ~106 bits: resolves 1 + 2^-100.
        let tiny = 2f64.powi(-80);
        let x = TwoFloat::<f64>::from_parts(1.0, tiny);
        let y = x - 1.0f64;
        assert_eq!(y.to_f64(), tiny);
    }

    #[test]
    fn fast_accurate_roundtrip() {
        let x = T::from_f64(core::f64::consts::PI);
        let y = x.into_fast().into_accurate();
        assert_eq!(x.to_f64(), y.to_f64());
    }

    #[test]
    fn fast_variant_arithmetic() {
        let x = FastTwoFloat::<f32>::from_f64(1.0 + 1e-9);
        let y = FastTwoFloat::<f32>::from_f64(2.0 - 1e-9);
        assert!(((x + y).to_f64() - 3.0).abs() < 1e-13);
        assert!(((x * y).to_f64() - (1.0 + 1e-9) * (2.0 - 1e-9)).abs() < 1e-12);
    }
}
