//! Cross-backend differential testing.
//!
//! [`differential`](crate::differential) checks one device against a
//! dense-LU oracle; this module checks *backends against each other*
//! through the `Backend` trait: the same f32-rounded system, the same
//! solver-config JSON, executed on the IPU simulator **and** the native
//! CPU baseline, each judged against the oracle bounds and then against
//! one another. The backends implement genuinely different algorithms in
//! different precisions (recursive f32 on the device, plain f64 on the
//! host), so the cross-check bound is a small multiple of the per-device
//! forward bound — agreement there means both converged to the same
//! mathematical solution, which is exactly the property a backend
//! abstraction must not break.
//!
//! The CPU baseline implements the Krylov subset of the suite (CG and
//! BiCGStab, optionally ILU(0)-preconditioned); [`cpu_supported_cases`]
//! names it, and a test pins it so a suite extension makes an explicit
//! decision about baseline coverage.

use std::rc::Rc;

use backend::BackendSpec;
use backend::{Backend, SolvePlan};
use graphene_core::backends::backend_for;
use graphene_core::config::{verification_suite, VerifyCase};
use graphene_core::runner::SolveOptions;

use crate::differential::MIN_FAMILIES;
use crate::generators::{random_rhs, solver_families, Family};
use crate::oracle::{self, DenseLu};

/// Suite entries the CPU baseline backend implements. The rest of the
/// suite (smoothers, MPIR) is simulator-only by design.
pub fn cpu_supported_cases() -> Vec<&'static str> {
    vec!["cg", "cg+ilu0", "bicgstab", "bicgstab+ilu0"]
}

/// One (configuration, family, backend) execution, plus the cross-check.
#[derive(Clone, Debug)]
pub struct CrossOutcome {
    pub case: &'static str,
    pub family: &'static str,
    pub backend: String,
    pub residual: f64,
    pub forward: f64,
    pub iterations: usize,
    /// Relative difference ‖x_this − x_ipu‖/‖x_ipu‖ against the IPU
    /// simulator's solution for the same case+family (0 for the IPU row).
    pub vs_ipu: f64,
}

fn sim_opts() -> SolveOptions {
    SolveOptions {
        model: dsl::prelude::IpuModel::tiny(4),
        tiles: Some(4),
        record_history: false,
        ..SolveOptions::default()
    }
}

struct Prepared {
    fam: Family,
    a32: Rc<sparse::formats::CsrMatrix>,
    lu: DenseLu,
    cond: f64,
    b: Vec<f64>,
}

fn prepare(fam: Family, seed: u64) -> Prepared {
    let a32 = Rc::new(oracle::rounded_f32(&fam.a));
    let lu = DenseLu::factor(&a32).expect("verification family must be nonsingular");
    let cond = oracle::cond_est(&a32, &lu, 30);
    let b: Vec<f64> = random_rhs(a32.nrows, seed).iter().map(|v| *v as f32 as f64).collect();
    Prepared { fam, a32, lu, cond, b }
}

fn run_backend(be: &dyn Backend, case: &VerifyCase, prep: &Prepared) -> (Vec<f64>, usize) {
    let plan = SolvePlan {
        a: Rc::clone(&prep.a32),
        solver: case.config.to_value(),
        record_history: false,
    };
    let mut prepared = be.prepare(&plan).unwrap_or_else(|e| {
        panic!("[{}/{}] {} refused the plan: {e}", case.name, prep.fam.name, be.name())
    });
    let run = prepared
        .execute(&prep.b, None)
        .unwrap_or_else(|e| panic!("[{}/{}] {} failed: {e}", case.name, prep.fam.name, be.name()));
    (run.x, run.iterations)
}

/// Run the CPU-supported suite subset on the IPU simulator and the CPU
/// baseline through the [`Backend`] trait, assert each backend against
/// the oracle bounds and the backends against each other, and assert
/// that the sequential and parallel CPU backends are bit-identical.
/// Returns all outcomes for reporting.
pub fn check_cross_backend(names: &[&str]) -> Vec<CrossOutcome> {
    let suite = verification_suite();
    let cases: Vec<&VerifyCase> = names
        .iter()
        .map(|n| {
            suite
                .iter()
                .find(|c| c.name == *n)
                .unwrap_or_else(|| panic!("unknown verification case '{n}'"))
        })
        .collect();
    let prepared: Vec<Prepared> = solver_families()
        .into_iter()
        .enumerate()
        .map(|(i, f)| prepare(f, 1000 + i as u64))
        .collect();

    let base = sim_opts();
    let ipu = backend_for(BackendSpec::parse("ipu-sim:seq").unwrap(), &base);
    let cpu = backend_for(BackendSpec::parse("cpu").unwrap(), &base);
    let cpu_par = backend_for(BackendSpec::parse("cpu:par").unwrap(), &base);

    let mut outcomes = Vec::new();
    for case in cases {
        let mut ran = 0usize;
        for prep in &prepared {
            if case.spd_only && !prep.fam.spd {
                continue;
            }
            if prep.cond > case.cond_bound {
                continue;
            }
            let x_ref = prep.lu.solve(&prep.b);
            let (x_ipu, it_ipu) = run_backend(ipu.as_ref(), case, prep);
            let (x_cpu, it_cpu) = run_backend(cpu.as_ref(), case, prep);
            let (x_cpu_par, it_cpu_par) = run_backend(cpu_par.as_ref(), case, prep);
            assert_eq!(
                x_cpu, x_cpu_par,
                "[{}/{}] cpu and cpu:par must be bit-identical",
                case.name, prep.fam.name
            );
            assert_eq!(it_cpu, it_cpu_par);

            for (backend_name, x, iterations) in
                [("ipu-sim:seq", &x_ipu, it_ipu), ("cpu", &x_cpu, it_cpu)]
            {
                let out = CrossOutcome {
                    case: case.name,
                    family: prep.fam.name,
                    backend: backend_name.to_string(),
                    residual: oracle::rel_residual(&prep.a32, x, &prep.b),
                    forward: oracle::rel_error(x, &x_ref),
                    iterations,
                    vs_ipu: oracle::rel_error(x, &x_ipu),
                };
                assert!(
                    out.residual <= case.residual_bound,
                    "[{}/{}/{}] residual {:.3e} exceeds bound {:.1e}",
                    out.case,
                    out.family,
                    out.backend,
                    out.residual,
                    case.residual_bound,
                );
                assert!(
                    out.forward <= case.forward_bound,
                    "[{}/{}/{}] forward error {:.3e} exceeds bound {:.1e}",
                    out.case,
                    out.family,
                    out.backend,
                    out.forward,
                    case.forward_bound,
                );
                // Different algorithms, different precisions — but the
                // same mathematical solution: the cross-difference stays
                // within a small multiple of the per-device bound.
                assert!(
                    out.vs_ipu <= 2.0 * case.forward_bound,
                    "[{}/{}/{}] cross-backend difference {:.3e} exceeds {:.1e}",
                    out.case,
                    out.family,
                    out.backend,
                    out.vs_ipu,
                    2.0 * case.forward_bound,
                );
                outcomes.push(out);
            }
            ran += 1;
        }
        assert!(
            ran >= MIN_FAMILIES,
            "case '{}' only cross-checked {ran} families (minimum {MIN_FAMILIES})",
            case.name,
        );
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_supported_cases_exist_in_the_suite() {
        let suite = verification_suite();
        for name in cpu_supported_cases() {
            assert!(suite.iter().any(|c| c.name == name), "'{name}' missing from the suite");
        }
    }

    #[test]
    fn cpu_subset_is_a_deliberate_decision() {
        // Every Krylov entry without a smoother/MPIR wrapper should be in
        // the CPU subset; extending the suite must revisit this list.
        assert_eq!(cpu_supported_cases().len(), 4);
    }
}
