//! The differential runner.
//!
//! Every entry of [`graphene_core::config::verification_suite`] is
//! executed on the simulated IPU against every compatible matrix family
//! from [`crate::generators::solver_families`], and the device solution is
//! compared with the dense f64 LU oracle solving the *same* f32-rounded
//! system. A configuration passes when both
//!
//! * the relative residual ‖b − A·x‖/‖b‖ (f64, rounded system), and
//! * the relative forward error ‖x − x*‖/‖x*‖ against the oracle x*
//!
//! stay within that configuration's declared bounds. Each configuration
//! must run on at least [`MIN_FAMILIES`] families — a suite that silently
//! skips everything is itself a bug.
//!
//! Multigrid is structured-grid-only (not expressible as a
//! [`SolverConfig`](graphene_core::config::SolverConfig)), so
//! [`run_two_grid`] drives the V-cycle pipeline by hand and checks it
//! against the same oracle.

use std::rc::Rc;

use dsl::prelude::*;
use graphene_core::config::{verification_suite, VerifyCase};
use graphene_core::dist::DistSystem;
use graphene_core::runner::{solve_or_panic, SolveOptions};
use graphene_core::solvers::{BiCgStab, Solver, TwoGrid};
use sparse::gen::{poisson_3d_7pt, rhs_for_ones, Grid3};
use sparse::partition::Partition;

use crate::generators::{random_rhs, solver_families, Family};
use crate::oracle::{self, DenseLu};

/// Fewest families a configuration may be exercised on.
pub const MIN_FAMILIES: usize = 3;

/// One (configuration, family) execution compared against the oracle.
#[derive(Clone, Debug)]
pub struct Outcome {
    pub case: &'static str,
    pub family: &'static str,
    /// Relative residual of the device solution (f64, rounded system).
    pub residual: f64,
    /// Relative forward error against the dense-LU oracle solution.
    pub forward: f64,
    pub iterations: usize,
}

fn sim_opts() -> SolveOptions {
    SolveOptions {
        model: IpuModel::tiny(4),
        tiles: Some(4),
        record_history: false,
        ..SolveOptions::default()
    }
}

/// A family prepared for differential runs: rounded system, factored
/// oracle, condition estimate.
struct Prepared {
    fam: Family,
    a32: Rc<sparse::formats::CsrMatrix>,
    lu: DenseLu,
    cond: f64,
    b: Vec<f64>,
}

fn prepare(fam: Family, seed: u64) -> Prepared {
    let a32 = Rc::new(oracle::rounded_f32(&fam.a));
    let lu = DenseLu::factor(&a32).expect("verification family must be nonsingular");
    let cond = oracle::cond_est(&a32, &lu, 30);
    // Round the rhs through f32 too, so the device and the oracle see
    // bit-identical data.
    let b: Vec<f64> = random_rhs(a32.nrows, seed).iter().map(|v| *v as f32 as f64).collect();
    Prepared { fam, a32, lu, cond, b }
}

fn run_one(case: &VerifyCase, prep: &Prepared) -> Outcome {
    let res = solve_or_panic(prep.a32.clone(), &prep.b, &case.config, &sim_opts());
    let x_ref = prep.lu.solve(&prep.b);
    Outcome {
        case: case.name,
        family: prep.fam.name,
        residual: oracle::rel_residual(&prep.a32, &res.x, &prep.b),
        forward: oracle::rel_error(&res.x, &x_ref),
        iterations: res.iterations,
    }
}

/// Run the named suite entries on every compatible family and assert the
/// declared bounds. Unknown names panic (a renamed configuration must not
/// silently drop out of the suite). Returns the outcomes for reporting.
pub fn check_cases(names: &[&str]) -> Vec<Outcome> {
    let suite = verification_suite();
    let cases: Vec<&VerifyCase> = names
        .iter()
        .map(|n| {
            suite
                .iter()
                .find(|c| c.name == *n)
                .unwrap_or_else(|| panic!("unknown verification case '{n}'"))
        })
        .collect();
    let prepared: Vec<Prepared> = solver_families()
        .into_iter()
        .enumerate()
        .map(|(i, f)| prepare(f, 1000 + i as u64))
        .collect();

    let mut outcomes = Vec::new();
    for case in cases {
        let mut ran = 0usize;
        for prep in &prepared {
            if case.spd_only && !prep.fam.spd {
                continue;
            }
            if prep.cond > case.cond_bound {
                continue;
            }
            let out = run_one(case, prep);
            assert!(
                out.residual <= case.residual_bound,
                "[{}/{}] residual {:.3e} exceeds bound {:.1e} ({} iterations)",
                out.case,
                out.family,
                out.residual,
                case.residual_bound,
                out.iterations,
            );
            assert!(
                out.forward <= case.forward_bound,
                "[{}/{}] forward error {:.3e} exceeds bound {:.1e} (residual {:.3e})",
                out.case,
                out.family,
                out.forward,
                case.forward_bound,
                out.residual,
            );
            ran += 1;
            outcomes.push(out);
        }
        assert!(
            ran >= MIN_FAMILIES,
            "case '{}' only ran on {ran} families (minimum {MIN_FAMILIES})",
            case.name,
        );
    }
    outcomes
}

/// All suite entry names, for callers that want to shard the suite across
/// test targets without missing an entry.
pub fn all_case_names() -> Vec<&'static str> {
    verification_suite().iter().map(|c| c.name).collect()
}

/// Differentially verify the two-grid multigrid solver (V(2,2) cycles on
/// the 3D Poisson problem) against the dense-LU oracle. Returns the
/// (residual, forward error) actually achieved after `cycles` cycles.
pub fn run_two_grid(cycles: u32) -> (f64, f64) {
    let fg = Grid3 { nx: 8, ny: 8, nz: 8 };
    let a = Rc::new(poisson_3d_7pt(fg.nx, fg.ny, fg.nz));
    let bs = rhs_for_ones(&a);
    let part = Partition::grid_3d(fg, 2, 2, 2);

    let mut ctx = DslCtx::new(IpuModel::tiny(8));
    let sys = DistSystem::build(&mut ctx, a.clone(), part);
    let b = sys.new_vector(&mut ctx, "b", DType::F32);
    let x = sys.new_vector(&mut ctx, "x", DType::F32);

    let coarse = Box::new(BiCgStab::new(60, 1e-7, None));
    let mut tg = TwoGrid::new(fg, (2, 2, 2), 2, 2, coarse);
    tg.setup(&mut ctx, &sys);
    ctx.repeat(cycles, |ctx| tg.solve(ctx, &sys, b, x));

    let mut engine = ctx.build_engine().expect("two-grid program compiles");
    sys.upload(&mut engine);
    tg.upload(&mut engine);
    engine.write_tensor(b.id, &sys.to_device_order(&bs));
    engine.run();
    let got = sys.from_device_order(&engine.read_tensor(x.id));

    // The exact solution of b = A·1 is the ones vector; the oracle
    // recovers it from the f32-rounded system the device saw (the 7-point
    // stencil is integral, so rounding is exact here).
    let lu = DenseLu::factor(&a).expect("Poisson system is nonsingular");
    let x_ref = lu.solve(&bs);
    (oracle::rel_residual(&a, &got, &bs), oracle::rel_error(&got, &x_ref))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_case_name_panics() {
        let r = std::panic::catch_unwind(|| check_cases(&["no_such_solver"]));
        assert!(r.is_err());
    }

    #[test]
    fn suite_names_are_unique_and_nonempty() {
        let names = all_case_names();
        assert!(names.len() >= 11, "suite shrank to {} entries", names.len());
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len(), "duplicate case names");
    }
}
