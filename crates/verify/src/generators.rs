//! Property-based sparse-matrix generators.
//!
//! All generators are deterministic functions of their `seed` (they draw
//! from the proptest shim's [`TestRng`]), so every failure reproduces
//! exactly. Structural invariants the rest of the suite relies on:
//!
//! * [`spd_dominant`] — symmetric and strictly diagonally dominant with a
//!   positive diagonal, hence SPD by Gershgorin;
//! * [`nonsym_dominant`] — strictly (row-)diagonally dominant but *not*
//!   symmetric, hence nonsingular but outside CG territory;
//! * [`banded_dominant`] — nonsymmetric entries confined to a band,
//!   strictly diagonally dominant;
//! * [`random_symmetric`] / [`random_skew`] — dense-pattern-free matrices
//!   with exact (skew-)symmetry for MatrixMarket round-trip properties.
//!
//! The differential suite's fixed matrix families live in
//! [`solver_families`].

use std::rc::Rc;

use proptest::TestRng;
use sparse::formats::{CooMatrix, CsrMatrix};
use sparse::gen::{poisson_2d_5pt, random_spd, tridiagonal};

/// A named test matrix plus the properties the differential runner needs
/// to know about it.
pub struct Family {
    pub name: &'static str,
    /// Symmetric positive definite (safe for CG / Chebyshev).
    pub spd: bool,
    pub a: Rc<CsrMatrix>,
}

/// Uniform value in [-1, 1).
fn sym_unit(rng: &mut TestRng) -> f64 {
    2.0 * rng.unit_f64() - 1.0
}

/// Pick `extras` distinct off-diagonal columns for row `i`.
fn pick_cols(rng: &mut TestRng, n: usize, i: usize, extras: usize) -> Vec<usize> {
    let mut cols = Vec::with_capacity(extras);
    let mut guard = 0;
    while cols.len() < extras && guard < 16 * extras + 16 {
        guard += 1;
        let j = rng.below(n);
        if j != i && !cols.contains(&j) {
            cols.push(j);
        }
    }
    cols
}

/// Symmetric, strictly diagonally dominant, positive diagonal ⇒ SPD.
///
/// Roughly `extras_per_row` off-diagonal pairs per row with values in
/// [-1, 1); the diagonal is the full row off-diagonal mass plus
/// `1 + unit` slack.
pub fn spd_dominant(n: usize, extras_per_row: usize, seed: u64) -> CsrMatrix {
    let mut rng = TestRng::seed_from_u64(seed ^ 0x5bd1_e995);
    let mut off = vec![Vec::<(usize, f64)>::new(); n];
    for i in 0..n {
        for j in pick_cols(&mut rng, n, i, extras_per_row) {
            // Insert symmetrically; skip if the mirror already exists so
            // the pattern stays duplicate-free.
            if off[i].iter().any(|&(c, _)| c == j) {
                continue;
            }
            let v = sym_unit(&mut rng);
            off[i].push((j, v));
            off[j].push((i, v));
        }
    }
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        let row_mass: f64 = off[i].iter().map(|&(_, v)| v.abs()).sum();
        coo.push(i, i, row_mass + 1.0 + rng.unit_f64());
        for &(j, v) in &off[i] {
            coo.push(i, j, v);
        }
    }
    coo.to_csr()
}

/// Strictly row-diagonally dominant with an asymmetric pattern.
pub fn nonsym_dominant(n: usize, extras_per_row: usize, seed: u64) -> CsrMatrix {
    let mut rng = TestRng::seed_from_u64(seed ^ 0x9e37_79b9);
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        let cols = pick_cols(&mut rng, n, i, extras_per_row);
        let mut row_mass = 0.0;
        let mut entries = Vec::with_capacity(cols.len());
        for j in cols {
            let v = sym_unit(&mut rng);
            row_mass += v.abs();
            entries.push((j, v));
        }
        coo.push(i, i, row_mass + 1.0 + rng.unit_f64());
        for (j, v) in entries {
            coo.push(i, j, v);
        }
    }
    coo.to_csr()
}

/// Nonsymmetric entries confined to `|i − j| ≤ bandwidth`, strictly
/// diagonally dominant.
pub fn banded_dominant(n: usize, bandwidth: usize, seed: u64) -> CsrMatrix {
    assert!(bandwidth >= 1);
    let mut rng = TestRng::seed_from_u64(seed ^ 0x85eb_ca6b);
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        let lo = i.saturating_sub(bandwidth);
        let hi = (i + bandwidth).min(n - 1);
        let mut row_mass = 0.0;
        let mut entries = Vec::new();
        for j in lo..=hi {
            if j == i || rng.unit_f64() < 0.35 {
                continue; // keep some holes in the band
            }
            let v = sym_unit(&mut rng);
            row_mass += v.abs();
            entries.push((j, v));
        }
        coo.push(i, i, row_mass + 1.0 + rng.unit_f64());
        for (j, v) in entries {
            coo.push(i, j, v);
        }
    }
    coo.to_csr()
}

/// Random rectangular matrix with a duplicate-free pattern (for
/// MatrixMarket round-trip properties).
pub fn random_general(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> CsrMatrix {
    let mut rng = TestRng::seed_from_u64(seed ^ 0xc2b2_ae35);
    let mut seen = std::collections::HashSet::new();
    let mut coo = CooMatrix::new(nrows, ncols);
    let mut guard = 0;
    while coo.nnz() < nnz && guard < 32 * nnz + 32 {
        guard += 1;
        let (i, j) = (rng.below(nrows), rng.below(ncols));
        if seen.insert((i, j)) {
            // Avoid exact zeros: a stored zero does not survive CSR
            // round-trips through code that prunes explicit zeros.
            coo.push(i, j, sym_unit(&mut rng) + 2.0);
        }
    }
    coo.to_csr()
}

/// Exactly symmetric square matrix (both triangles stored).
pub fn random_symmetric(n: usize, extras_per_row: usize, seed: u64) -> CsrMatrix {
    spd_dominant(n, extras_per_row, seed)
}

/// Exactly skew-symmetric square matrix: `a[j][i] = -a[i][j]`, zero
/// diagonal (not stored).
pub fn random_skew(n: usize, extras_per_row: usize, seed: u64) -> CsrMatrix {
    let mut rng = TestRng::seed_from_u64(seed ^ 0x27d4_eb2f);
    let mut off = vec![Vec::<(usize, f64)>::new(); n];
    for i in 0..n {
        for j in pick_cols(&mut rng, n, i, extras_per_row) {
            if off[i].iter().any(|&(c, _)| c == j) {
                continue;
            }
            let v = sym_unit(&mut rng) + 2.0; // nonzero
            let (lo, hi) = if i > j { (j, i) } else { (i, j) };
            // a[hi][lo] = v (strict lower), a[lo][hi] = -v.
            off[hi].push((lo, v));
            off[lo].push((hi, -v));
        }
    }
    let mut coo = CooMatrix::new(n, n);
    for (i, row) in off.iter().enumerate() {
        for &(j, v) in row {
            coo.push(i, j, v);
        }
    }
    coo.to_csr()
}

/// Random right-hand side with entries in [-1, 1).
pub fn random_rhs(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = TestRng::seed_from_u64(seed ^ 0x1656_67b1);
    (0..n).map(|_| sym_unit(&mut rng)).collect()
}

/// The fixed matrix families the differential suite runs every solver
/// configuration against. Small on purpose: each entry is solved by a
/// dozen configurations on the simulated device under `cargo test`.
pub fn solver_families() -> Vec<Family> {
    vec![
        Family { name: "poisson2d", spd: true, a: Rc::new(poisson_2d_5pt(8, 8, 1.0)) },
        Family { name: "tridiag", spd: true, a: Rc::new(tridiagonal(48)) },
        Family { name: "random_spd", spd: true, a: Rc::new(random_spd(40, 4, 11)) },
        Family { name: "spd_dd", spd: true, a: Rc::new(spd_dominant(36, 3, 21)) },
        Family { name: "nonsym_dd", spd: false, a: Rc::new(nonsym_dominant(48, 3, 7)) },
        Family { name: "banded_dd", spd: false, a: Rc::new(banded_dominant(40, 3, 5)) },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spd_dominant_is_symmetric_and_dominant() {
        let a = spd_dominant(30, 4, 42);
        assert!(a.is_symmetric(0.0));
        for i in 0..a.nrows {
            let (cols, vals) = a.row(i);
            let mut diag = 0.0;
            let mut mass = 0.0;
            for (c, v) in cols.iter().zip(vals) {
                if *c as usize == i {
                    diag = *v;
                } else {
                    mass += v.abs();
                }
            }
            assert!(diag > mass, "row {i} not dominant: {diag} vs {mass}");
        }
    }

    #[test]
    fn nonsym_dominant_is_dominant_but_not_symmetric() {
        let a = nonsym_dominant(40, 3, 1);
        assert!(!a.is_symmetric(1e-12));
        for i in 0..a.nrows {
            let (cols, vals) = a.row(i);
            let mut diag = 0.0;
            let mut mass = 0.0;
            for (c, v) in cols.iter().zip(vals) {
                if *c as usize == i {
                    diag = *v;
                } else {
                    mass += v.abs();
                }
            }
            assert!(diag > mass, "row {i} not dominant");
        }
    }

    #[test]
    fn banded_respects_bandwidth() {
        let bw = 3;
        let a = banded_dominant(32, bw, 3);
        for i in 0..a.nrows {
            let (cols, _) = a.row(i);
            for c in cols {
                let j = *c as usize;
                assert!(i.abs_diff(j) <= bw, "entry ({i},{j}) outside band");
            }
        }
    }

    #[test]
    fn skew_is_exactly_skew() {
        let a = random_skew(24, 3, 9);
        for i in 0..a.nrows {
            let (cols, vals) = a.row(i);
            for (c, v) in cols.iter().zip(vals) {
                let j = *c as usize;
                assert_ne!(i, j, "diagonal entry in skew matrix");
                assert_eq!(a.get(j, i), -v, "mirror mismatch at ({i},{j})");
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let a = spd_dominant(20, 3, 77);
        let b = spd_dominant(20, 3, 77);
        assert_eq!(a.values, b.values);
        assert_eq!(a.col_idx, b.col_idx);
    }
}
