//! Simulator-level invariants.
//!
//! The simulated machine is fully deterministic, so strong structural
//! checks are cheap:
//!
//! * [`assert_deterministic`] — running the *same* solve twice must give
//!   bit-identical solutions and cycle-identical profiles (device cycles,
//!   per-label/per-phase splits, exchanged bytes, superstep count). Any
//!   drift means hidden host state leaked into the program.
//! * [`audit_exchange_conservation`] — with a trace attached, the bytes
//!   recorded per exchange step must sum to exactly
//!   `CycleStats::exchange_bytes()`, the label stack must balance
//!   (`label_underflows == 0`), and the per-label cycle attribution must
//!   partition `device_cycles` exactly.
//! * [`assert_executor_equivalence`] — the same solve under the
//!   sequential and the tile-parallel host executor must produce
//!   bit-identical solution tensors *and* identical cycle profiles
//!   (device cycles, per-phase splits, per-label partitions, per-tile
//!   busy time). Any drift means the parallel merge order or the
//!   storage-view partitioning leaked into observable state.

use std::rc::Rc;

use dsl::prelude::*;
use graph::ExecutorKind;
use graphene_core::config::SolverConfig;
use graphene_core::dist::DistSystem;
use graphene_core::runner::{solve_or_panic, SolveOptions, SolveResult};
use graphene_core::solvers::solver_from_config;
use ipu_sim::clock::Phase;
use profile::TraceRecorder;
use sparse::formats::CsrMatrix;

fn sim_opts() -> SolveOptions {
    SolveOptions {
        model: IpuModel::tiny(4),
        tiles: Some(4),
        record_history: false,
        ..SolveOptions::default()
    }
}

/// What the double-run determinism check compared.
#[derive(Clone, Debug)]
pub struct DeterminismReport {
    pub device_cycles: u64,
    pub iterations: usize,
    pub exchange_bytes: u64,
}

fn fingerprint(r: &SolveResult) -> (Vec<u64>, u64, u64, u64, u64, Vec<(String, [u64; 3])>) {
    (
        r.x.iter().map(|v| v.to_bits()).collect(),
        r.stats.device_cycles(),
        r.stats.exchange_bytes(),
        r.stats.supersteps(),
        r.stats.sync_count(),
        r.stats.labels_by_phase_sorted(),
    )
}

/// Run the same solve twice and require bit/cycle-identical outcomes.
pub fn assert_deterministic(
    a: Rc<CsrMatrix>,
    b: &[f64],
    config: &SolverConfig,
) -> DeterminismReport {
    let r1 = solve_or_panic(a.clone(), b, config, &sim_opts());
    let r2 = solve_or_panic(a.clone(), b, config, &sim_opts());
    let (x1, dc1, xb1, ss1, sc1, lb1) = fingerprint(&r1);
    let (x2, dc2, xb2, ss2, sc2, lb2) = fingerprint(&r2);
    assert_eq!(x1, x2, "solution bits differ between identical runs");
    assert_eq!(dc1, dc2, "device cycles differ between identical runs");
    assert_eq!(xb1, xb2, "exchanged bytes differ between identical runs");
    assert_eq!(ss1, ss2, "superstep counts differ between identical runs");
    assert_eq!(sc1, sc2, "sync counts differ between identical runs");
    assert_eq!(lb1, lb2, "per-label cycle splits differ between identical runs");
    assert_eq!(r1.iterations, r2.iterations, "iteration counts differ");
    DeterminismReport { device_cycles: dc1, iterations: r1.iterations, exchange_bytes: xb1 }
}

/// What the dual-executor equivalence check compared.
#[derive(Clone, Debug)]
pub struct ExecutorEquivalence {
    pub device_cycles: u64,
    pub iterations: usize,
}

/// Require a candidate run to be observationally identical to the
/// sequential reference: solution bits, device cycles, per-phase splits,
/// per-label partitions, per-tile busy time, superstep and sync counts,
/// exchanged bytes, the recorded history and device seconds.
fn assert_runs_identical(reference: &SolveResult, candidate: &SolveResult, who: &str) {
    let (xs, dcs, xbs, sss, scs, lbs) = fingerprint(reference);
    let (xp, dcp, xbp, ssp, scp, lbp) = fingerprint(candidate);
    assert_eq!(xs, xp, "{who}: solution bits differ from sequential");
    assert_eq!(dcs, dcp, "{who}: device cycles differ from sequential");
    assert_eq!(xbs, xbp, "{who}: exchanged bytes differ from sequential");
    assert_eq!(sss, ssp, "{who}: superstep counts differ from sequential");
    assert_eq!(scs, scp, "{who}: sync counts differ from sequential");
    assert_eq!(lbs, lbp, "{who}: per-label cycle partitions differ from sequential");
    for phase in [Phase::Compute, Phase::Exchange, Phase::Sync] {
        assert_eq!(
            reference.stats.phase_cycles(phase),
            candidate.stats.phase_cycles(phase),
            "{who}: {phase:?} cycles differ from sequential"
        );
        assert_eq!(
            reference.stats.unlabelled_phase_cycles(phase),
            candidate.stats.unlabelled_phase_cycles(phase),
            "{who}: unlabelled {phase:?} cycles differ from sequential"
        );
    }
    assert_eq!(
        reference.stats.tile_busy_all(),
        candidate.stats.tile_busy_all(),
        "{who}: per-tile busy cycles differ from sequential"
    );
    assert_eq!(
        reference.iterations, candidate.iterations,
        "{who}: iteration counts differ from sequential"
    );
    let hs: Vec<(usize, u64)> = reference.history.iter().map(|&(i, r)| (i, r.to_bits())).collect();
    let hp: Vec<(usize, u64)> = candidate.history.iter().map(|&(i, r)| (i, r.to_bits())).collect();
    assert_eq!(hs, hp, "{who}: residual histories differ from sequential");
    assert_eq!(
        reference.report.seconds, candidate.report.seconds,
        "{who}: device seconds differ from sequential"
    );
}

/// Run the same solve under every host executor — sequential (the
/// reference), tile-parallel, native fused-kernel, and native with fusion
/// force-disabled — and require bit-identical solutions and cycle-identical
/// profiles across all four.
///
/// This is the determinism contract of the executor family: the parallel
/// executor partitions vertices across host workers but merges per-tile
/// cycles in tile-id order; the native executor swaps the tree-walking
/// interpreter for monomorphised Rust kernels that re-derive the same
/// cycle charges; the fusion-off leg pins the native dispatch path itself.
/// *Nothing* observable may differ — solution bits, device cycles,
/// per-phase splits, per-label partitions, per-tile busy time, superstep
/// and sync counts, exchanged bytes, or the recorded history.
pub fn assert_executor_equivalence(
    a: Rc<CsrMatrix>,
    b: &[f64],
    config: &SolverConfig,
) -> ExecutorEquivalence {
    assert_executor_equivalence_with(a, b, config, &sim_opts())
}

/// [`assert_executor_equivalence`] over caller-supplied base options —
/// the same four-legged sweep, but e.g. with auto-tuning enabled or a
/// bigger machine. Only the executor selection is overridden per leg;
/// everything else in `base` is honoured.
pub fn assert_executor_equivalence_with(
    a: Rc<CsrMatrix>,
    b: &[f64],
    config: &SolverConfig,
    base: &SolveOptions,
) -> ExecutorEquivalence {
    let with = |executor, native_fusion| SolveOptions {
        executor: Some(executor),
        native_fusion,
        record_history: true,
        ..base.clone()
    };
    let rs = solve_or_panic(a.clone(), b, config, &with(ExecutorKind::Sequential, None));
    let rp = solve_or_panic(a.clone(), b, config, &with(ExecutorKind::Parallel, None));
    let rn = solve_or_panic(a.clone(), b, config, &with(ExecutorKind::Native, None));
    let rn_off = solve_or_panic(a.clone(), b, config, &with(ExecutorKind::Native, Some(false)));
    assert_runs_identical(&rs, &rp, "parallel");
    assert_runs_identical(&rs, &rn, "native");
    assert_runs_identical(&rs, &rn_off, "native(fusion off)");
    let (_, dcs, ..) = fingerprint(&rs);
    ExecutorEquivalence { device_cycles: dcs, iterations: rs.iterations }
}

/// What the exchange-conservation audit measured.
#[derive(Clone, Debug)]
pub struct ExchangeAudit {
    /// Σ bytes over every traced exchange step.
    pub traced_bytes: u64,
    /// `CycleStats::exchange_bytes()` for the same run.
    pub stats_bytes: u64,
    pub device_cycles: u64,
    pub exchange_steps: usize,
}

/// Execute a solver with a trace attached and check byte conservation,
/// label balance and exact label attribution.
pub fn audit_exchange_conservation(
    a: Rc<CsrMatrix>,
    b: &[f64],
    config: &SolverConfig,
) -> ExchangeAudit {
    let tiles = 4;
    let part = sparse::partition::Partition::balanced_by_nnz(&a, tiles);
    let mut ctx = DslCtx::new(IpuModel::tiny(tiles));
    let sys = DistSystem::build(&mut ctx, a.clone(), part);
    let bt = sys.new_vector(&mut ctx, "b", DType::F32);
    let xt = sys.new_vector(&mut ctx, "x", DType::F32);
    let mut solver = solver_from_config(config);
    solver.setup(&mut ctx, &sys);
    solver.solve(&mut ctx, &sys, bt, xt);

    let mut engine = ctx.build_engine().expect("solver program compiles");
    engine.set_trace(TraceRecorder::new());
    sys.upload(&mut engine);
    engine.write_tensor(bt.id, &sys.to_device_order(b));
    engine.run();

    let stats = engine.stats();
    assert_eq!(stats.label_underflows(), 0, "label stack underflowed during execution");
    let labelled: u64 = stats.labels_sorted().iter().map(|(_, c)| c).sum();
    assert_eq!(
        labelled + stats.unlabelled_cycles(),
        stats.device_cycles(),
        "per-label cycles do not partition device_cycles"
    );

    let trace = engine.trace().expect("trace was attached");
    let traced_bytes: u64 = trace.exchanges().iter().map(|e| e.bytes).sum();
    assert_eq!(
        traced_bytes,
        stats.exchange_bytes(),
        "traced exchange bytes disagree with CycleStats::exchange_bytes()"
    );
    ExchangeAudit {
        traced_bytes,
        stats_bytes: stats.exchange_bytes(),
        device_cycles: stats.device_cycles(),
        exchange_steps: trace.exchanges().len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen::{poisson_2d_5pt, rhs_for_ones};

    #[test]
    fn small_bicgstab_run_is_deterministic() {
        let a = Rc::new(poisson_2d_5pt(6, 6, 1.0));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::BiCgStab { max_iters: 10, rel_tol: 0.0, precond: None };
        let rep = assert_deterministic(a, &b, &cfg);
        assert!(rep.device_cycles > 0);
        assert!(rep.exchange_bytes > 0);
    }

    #[test]
    fn small_bicgstab_run_matches_across_executors() {
        let a = Rc::new(poisson_2d_5pt(6, 6, 1.0));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::BiCgStab { max_iters: 12, rel_tol: 0.0, precond: None };
        let eq = assert_executor_equivalence(a, &b, &cfg);
        assert!(eq.device_cycles > 0);
        assert!(eq.iterations > 0);
    }

    #[test]
    fn small_run_conserves_exchange_bytes() {
        let a = Rc::new(poisson_2d_5pt(6, 6, 1.0));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::Jacobi { sweeps: 8, omega: 2.0 / 3.0 };
        let audit = audit_exchange_conservation(a, &b, &cfg);
        assert!(audit.exchange_steps > 0);
        assert_eq!(audit.traced_bytes, audit.stats_bytes);
    }
}
