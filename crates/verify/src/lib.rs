//! `graphene-verify` — a differential-oracle correctness harness.
//!
//! The simulator stack is deterministic end to end, which makes it
//! unusually testable: every solver configuration can be executed on the
//! simulated device and compared bit-for-bit across runs, and compared
//! numerically against a host-side f64 oracle. This crate packages that
//! idea into four reusable pieces:
//!
//! * [`generators`] — property-based sparse-matrix generators (SPD,
//!   diagonally dominant, banded, random sparsity) plus the fixed family
//!   set the differential suite runs against;
//! * [`oracle`] — a dense f64 LU factorisation with partial pivoting and
//!   reference kernels (SpMV, dot, norms) used as ground truth;
//! * [`differential`] — the runner that executes every entry of
//!   [`graphene_core::config::verification_suite`] on the simulated IPU
//!   and asserts per-configuration residual and forward-error bounds;
//! * [`cross_backend`] — the same idea across *backends*: the Krylov
//!   subset of the suite executed on both the IPU simulator and the
//!   native CPU baseline through the `Backend` trait, each judged
//!   against the oracle and against each other;
//! * [`ulp_audit`] — sweeps the double-word (`twofloat`) primitives over
//!   adversarial operands and asserts the Joldes et al. error bounds and
//!   the normalisation invariant;
//! * [`invariants`] — simulator-level checks: double-run bit determinism,
//!   label-stack balance and exchange-byte conservation;
//! * [`resilience`] — fault-injection properties: the outcome trichotomy
//!   under seeded faults (converged | recovered | structured error, with
//!   the accepted residual independently recomputed so no silently-wrong
//!   answer escapes), bit-determinism of faulted replays across runs and
//!   executors, and zero overhead when the machinery is off;
//! * [`plan_equiv`] — graph-compiler checks: the optimised plan, the
//!   unoptimised plan and the legacy tree-walking interpreter must
//!   produce bit-identical solutions and cycle-identical profiles.
//!
//! The heavyweight sweeps scale with the `GRAPHENE_VERIFY_CASES`
//! environment variable (see [`cases_from_env`]) so CI can turn the dial
//! up without code changes while the default `cargo test -q` stays within
//! a ~30 s budget.

pub mod cross_backend;
pub mod differential;
pub mod generators;
pub mod invariants;
pub mod oracle;
pub mod plan_equiv;
pub mod resilience;
pub mod ulp_audit;

/// Number of randomised cases a sweep should run.
///
/// Reads `GRAPHENE_VERIFY_CASES`; falls back to `default` when unset or
/// unparsable. The value scales *per-sweep* case counts, so a single knob
/// deepens every property in the suite.
pub fn cases_from_env(default: u32) -> u32 {
    std::env::var("GRAPHENE_VERIFY_CASES")
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    #[test]
    fn cases_default_when_unset() {
        // The variable is not set under `cargo test` unless the caller
        // exports it; either way the result is positive.
        assert!(super::cases_from_env(7) > 0);
    }
}
