//! Host-side f64 ground truth.
//!
//! The device works on f32-rounded matrix data, so the fair oracle solves
//! the *rounded* system in f64: factor `fl32(A)` densely with partial
//! pivoting and compare the device solution against that. For the small
//! matrices the differential suite uses (n ≲ 600) dense LU is exact to
//! ~n·u₆₄·κ(A), far below every bound the suite asserts.

use sparse::formats::CsrMatrix;

/// The matrix as the device sees it: every value rounded through f32.
pub fn rounded_f32(a: &CsrMatrix) -> CsrMatrix {
    let mut r = a.clone();
    for v in &mut r.values {
        *v = *v as f32 as f64;
    }
    r
}

/// Dense LU factorisation with partial pivoting (Doolittle, f64).
pub struct DenseLu {
    n: usize,
    /// Row-major packed L\U factors.
    lu: Vec<f64>,
    /// `piv[k]` = original row swapped into position k at step k.
    piv: Vec<usize>,
}

impl DenseLu {
    /// Factor a square sparse matrix densely. Returns `None` when a pivot
    /// column is exactly zero (structurally or numerically singular).
    pub fn factor(a: &CsrMatrix) -> Option<DenseLu> {
        assert_eq!(a.nrows, a.ncols, "oracle needs a square matrix");
        let n = a.nrows;
        let mut lu = vec![0.0f64; n * n];
        for i in 0..n {
            let (cols, vals) = a.row(i);
            for (c, v) in cols.iter().zip(vals) {
                lu[i * n + *c as usize] = *v;
            }
        }
        let mut piv = vec![0usize; n];
        for k in 0..n {
            // Partial pivot: largest |entry| in column k at or below row k.
            let (mut p, mut best) = (k, lu[k * n + k].abs());
            for r in k + 1..n {
                let cand = lu[r * n + k].abs();
                if cand > best {
                    p = r;
                    best = cand;
                }
            }
            if best == 0.0 {
                return None;
            }
            piv[k] = p;
            if p != k {
                for j in 0..n {
                    lu.swap(k * n + j, p * n + j);
                }
            }
            let pivot = lu[k * n + k];
            for r in k + 1..n {
                let m = lu[r * n + k] / pivot;
                lu[r * n + k] = m;
                if m != 0.0 {
                    for j in k + 1..n {
                        lu[r * n + j] -= m * lu[k * n + j];
                    }
                }
            }
        }
        Some(DenseLu { n, lu, piv })
    }

    /// Solve `A x = b` using the stored factors.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        let mut x = b.to_vec();
        // Apply the row interchanges, then L (unit lower), then U.
        for k in 0..n {
            x.swap(k, self.piv[k]);
            let xk = x[k];
            if xk != 0.0 {
                for r in k + 1..n {
                    x[r] -= self.lu[r * n + k] * xk;
                }
            }
        }
        for k in (0..n).rev() {
            let mut s = x[k];
            for j in k + 1..n {
                s -= self.lu[k * n + j] * x[j];
            }
            x[k] = s / self.lu[k * n + k];
        }
        x
    }
}

/// Reference dense SpMV built from random access — deliberately a
/// different code path from `CsrMatrix::spmv` so the two can be
/// differentially tested against each other.
pub fn dense_spmv(a: &CsrMatrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(a.ncols, x.len());
    (0..a.nrows).map(|i| (0..a.ncols).map(|j| a.get(i, j) * x[j]).sum()).collect()
}

/// Reference dot product (f64 accumulation).
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// ‖x‖₂.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Rough 2-norm condition-number estimate: power iteration for the
/// largest singular direction and inverse iteration (through the LU
/// factors) for the smallest. Accurate to a small factor — enough to
/// decide whether a matrix is "well-conditioned" for a smoother.
pub fn cond_est(a: &CsrMatrix, lu: &DenseLu, iters: usize) -> f64 {
    let n = a.nrows;
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.7).sin()).collect();
    let mut lambda_max = 0.0f64;
    for _ in 0..iters {
        let w = a.spmv_alloc(&v);
        lambda_max = norm2(&w);
        if lambda_max == 0.0 {
            return f64::INFINITY;
        }
        v = w.iter().map(|x| x / lambda_max).collect();
    }
    let mut u: Vec<f64> = (0..n).map(|i| 1.0 - (i as f64 * 0.3).cos()).collect();
    let mut inv_norm = 0.0f64;
    for _ in 0..iters {
        let w = lu.solve(&u);
        inv_norm = norm2(&w);
        if inv_norm == 0.0 {
            return f64::INFINITY;
        }
        u = w.iter().map(|x| x / inv_norm).collect();
    }
    lambda_max * inv_norm
}

/// Relative residual ‖b − A·x‖ / ‖b‖ (absolute ‖A·x‖ when b = 0).
pub fn rel_residual(a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
    let ax = a.spmv_alloc(x);
    let r2: f64 = b.iter().zip(&ax).map(|(b, ax)| (b - ax) * (b - ax)).sum();
    let b2 = dot(b, b);
    if b2 > 0.0 {
        (r2 / b2).sqrt()
    } else {
        r2.sqrt()
    }
}

/// Relative forward error ‖x − x_ref‖ / ‖x_ref‖ (absolute when x_ref = 0).
pub fn rel_error(x: &[f64], x_ref: &[f64]) -> f64 {
    assert_eq!(x.len(), x_ref.len());
    let d2: f64 = x.iter().zip(x_ref).map(|(a, b)| (a - b) * (a - b)).sum();
    let n2 = dot(x_ref, x_ref);
    if n2 > 0.0 {
        (d2 / n2).sqrt()
    } else {
        d2.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{nonsym_dominant, random_rhs, spd_dominant};
    use sparse::gen::{poisson_2d_5pt, rhs_for_ones};

    #[test]
    fn lu_solves_identity() {
        let a = CsrMatrix::identity(5);
        let lu = DenseLu::factor(&a).unwrap();
        let b = vec![3.0, -1.0, 0.5, 2.0, 7.0];
        assert_eq!(lu.solve(&b), b);
    }

    #[test]
    fn lu_recovers_known_solution() {
        let a = poisson_2d_5pt(7, 6, 1.0);
        let b = rhs_for_ones(&a);
        let x = DenseLu::factor(&a).unwrap().solve(&b);
        for v in &x {
            assert!((v - 1.0).abs() < 1e-12, "x = {v}");
        }
    }

    #[test]
    fn lu_residual_is_tiny_on_random_systems() {
        for seed in [1u64, 2, 3] {
            let a = nonsym_dominant(40, 4, seed);
            let b = random_rhs(40, seed);
            let x = DenseLu::factor(&a).unwrap().solve(&b);
            let r = rel_residual(&a, &x, &b);
            assert!(r < 1e-13, "seed {seed}: residual {r:.3e}");
        }
    }

    #[test]
    fn lu_requires_pivoting_matrix() {
        // Zero leading diagonal entry: Doolittle without pivoting fails,
        // partial pivoting must succeed.
        let mut coo = sparse::formats::CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        let a = coo.to_csr();
        let x = DenseLu::factor(&a).unwrap().solve(&[5.0, 9.0]);
        assert_eq!(x, vec![9.0, 5.0]);
    }

    #[test]
    fn singular_matrix_rejected() {
        let mut coo = sparse::formats::CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 0, 1.0); // column 1 empty ⇒ singular
        assert!(DenseLu::factor(&coo.to_csr()).is_none());
    }

    #[test]
    fn csr_spmv_matches_dense_reference() {
        for seed in [10u64, 20, 30] {
            let a = spd_dominant(24, 3, seed);
            let x = random_rhs(24, seed + 1);
            let fast = a.spmv_alloc(&x);
            let slow = dense_spmv(&a, &x);
            for (f, s) in fast.iter().zip(&slow) {
                assert!((f - s).abs() <= 1e-12 * (1.0 + s.abs()), "{f} vs {s}");
            }
        }
    }

    #[test]
    fn cond_est_separates_well_from_ill_conditioned() {
        // Strongly dominant random SPD: κ is a small constant.
        let good = spd_dominant(32, 3, 8);
        let lu = DenseLu::factor(&good).unwrap();
        let kg = cond_est(&good, &lu, 30);
        assert!(kg < 50.0, "dominant κ estimate {kg:.1}");
        // 1D Poisson: κ ≈ 4n²/π² ≈ 930 at n = 48.
        let bad = sparse::gen::tridiagonal(48);
        let lu = DenseLu::factor(&bad).unwrap();
        let kb = cond_est(&bad, &lu, 30);
        assert!(kb > 300.0, "tridiagonal κ estimate {kb:.1}");
    }

    #[test]
    fn rounded_f32_rounds_every_value() {
        let a = spd_dominant(16, 3, 4);
        let r = rounded_f32(&a);
        for (orig, rv) in a.values.iter().zip(&r.values) {
            assert_eq!(*rv, *orig as f32 as f64);
        }
    }
}
