//! Plan-equivalence invariants for the graph compiler.
//!
//! `Graph::compile` lowers the program tree to an [`graph::ExecPlan`] and
//! (unless `GRAPHENE_NO_OPT` is set) runs the optimisation pass pipeline
//! over it. Every pass must be *observationally cycle-neutral*: it may
//! remove host dispatch overhead, never simulated device work. The
//! contract, checked here across three execution modes of the same solve:
//!
//! 1. the optimised plan (the default),
//! 2. the unoptimised plan (`GRAPHENE_NO_OPT=1`),
//! 3. the legacy tree-walking interpreter
//!    (`GRAPHENE_LEGACY_INTERP=1`), which re-plans every step on every
//!    execution,
//!
//! must produce **bit-identical solutions** and **cycle-identical
//! profiles**: device cycles, per-phase splits, per-label partitions,
//! per-tile busy time, superstep and sync counts, exchanged bytes, the
//! recorded residual history, and the modelled device seconds. Any drift
//! means an optimisation pass changed device semantics instead of host
//! bookkeeping — precisely the bug class this harness exists to catch.

use std::rc::Rc;

use dsl::prelude::*;
use graphene_core::config::SolverConfig;
use graphene_core::runner::{solve_or_panic, SolveOptions, SolveResult};
use ipu_sim::clock::Phase;
use profile::CompileReport;
use sparse::formats::CsrMatrix;

fn sim_opts() -> SolveOptions {
    SolveOptions {
        model: IpuModel::tiny(4),
        tiles: Some(4),
        record_history: true,
        ..SolveOptions::default()
    }
}

/// What the three-way plan equivalence check compared.
#[derive(Clone, Debug)]
pub struct PlanEquivalence {
    pub device_cycles: u64,
    pub iterations: usize,
    /// Dispatch steps in the optimised plan.
    pub optimised_steps: usize,
    /// Dispatch steps in the unoptimised plan.
    pub unoptimised_steps: usize,
}

fn fingerprint(r: &SolveResult) -> (Vec<u64>, u64, u64, u64, u64, Vec<(String, [u64; 3])>) {
    (
        r.x.iter().map(|v| v.to_bits()).collect(),
        r.stats.device_cycles(),
        r.stats.exchange_bytes(),
        r.stats.supersteps(),
        r.stats.sync_count(),
        r.stats.labels_by_phase_sorted(),
    )
}

fn assert_same(mode: &str, base: &SolveResult, other: &SolveResult) {
    let (xb, dcb, xbb, ssb, scb, lbb) = fingerprint(base);
    let (xo, dco, xbo, sso, sco, lbo) = fingerprint(other);
    assert_eq!(xb, xo, "solution bits differ ({mode})");
    assert_eq!(dcb, dco, "device cycles differ ({mode})");
    assert_eq!(xbb, xbo, "exchanged bytes differ ({mode})");
    assert_eq!(ssb, sso, "superstep counts differ ({mode})");
    assert_eq!(scb, sco, "sync counts differ ({mode})");
    assert_eq!(lbb, lbo, "per-label cycle partitions differ ({mode})");
    for phase in [Phase::Compute, Phase::Exchange, Phase::Sync] {
        assert_eq!(
            base.stats.phase_cycles(phase),
            other.stats.phase_cycles(phase),
            "{phase:?} cycles differ ({mode})"
        );
        assert_eq!(
            base.stats.unlabelled_phase_cycles(phase),
            other.stats.unlabelled_phase_cycles(phase),
            "unlabelled {phase:?} cycles differ ({mode})"
        );
    }
    assert_eq!(
        base.stats.tile_busy_all(),
        other.stats.tile_busy_all(),
        "per-tile busy cycles differ ({mode})"
    );
    assert_eq!(base.iterations, other.iterations, "iteration counts differ ({mode})");
    let hb: Vec<(usize, u64)> = base.history.iter().map(|&(i, r)| (i, r.to_bits())).collect();
    let ho: Vec<(usize, u64)> = other.history.iter().map(|&(i, r)| (i, r.to_bits())).collect();
    assert_eq!(hb, ho, "residual histories differ ({mode})");
    assert_eq!(base.report.seconds, other.report.seconds, "device seconds differ ({mode})");
}

fn compile_report(r: &SolveResult) -> &CompileReport {
    r.report.compile.as_ref().expect("runner stamps the compile report")
}

/// Run the same solve through the optimised plan, the unoptimised plan
/// and the legacy tree-walking interpreter, and require bit-identical
/// solutions and cycle-identical profiles across all three.
pub fn assert_plan_equivalence(
    a: Rc<CsrMatrix>,
    b: &[f64],
    config: &SolverConfig,
) -> PlanEquivalence {
    let opt = solve_or_panic(
        a.clone(),
        b,
        config,
        &SolveOptions { optimise: Some(true), legacy_interpreter: Some(false), ..sim_opts() },
    );
    let noopt = solve_or_panic(
        a.clone(),
        b,
        config,
        &SolveOptions { optimise: Some(false), legacy_interpreter: Some(false), ..sim_opts() },
    );
    let legacy = solve_or_panic(
        a.clone(),
        b,
        config,
        &SolveOptions { optimise: Some(true), legacy_interpreter: Some(true), ..sim_opts() },
    );

    assert_same("optimised vs unoptimised plan", &opt, &noopt);
    assert_same("optimised plan vs legacy interpreter", &opt, &legacy);

    let ro = compile_report(&opt);
    let rn = compile_report(&noopt);
    assert!(ro.optimised, "optimised run lost its CompileReport flag");
    assert!(!rn.optimised, "unoptimised run lost its CompileReport flag");
    assert_eq!(
        ro.source_steps, rn.source_steps,
        "source step counts differ between compiles of the same program"
    );
    assert!(
        ro.plan_steps <= rn.plan_steps,
        "optimisation increased dispatch steps ({} > {})",
        ro.plan_steps,
        rn.plan_steps
    );
    PlanEquivalence {
        device_cycles: opt.stats.device_cycles(),
        iterations: opt.iterations,
        optimised_steps: ro.plan_steps,
        unoptimised_steps: rn.plan_steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen::{poisson_2d_5pt, rhs_for_ones};

    #[test]
    fn small_bicgstab_plans_are_equivalent() {
        let a = Rc::new(poisson_2d_5pt(6, 6, 1.0));
        let b = rhs_for_ones(&a);
        let cfg = SolverConfig::BiCgStab {
            max_iters: 8,
            rel_tol: 0.0,
            precond: Some(Box::new(SolverConfig::Ilu0 {})),
        };
        let eq = assert_plan_equivalence(a, &b, &cfg);
        assert!(eq.device_cycles > 0);
        assert!(eq.optimised_steps > 0);
        assert!(eq.optimised_steps <= eq.unoptimised_steps);
    }
}
