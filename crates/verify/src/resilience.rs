//! Fault-injection resilience properties.
//!
//! The fault layer (`ipu_sim::fault`) and the recovery state machine
//! (`graphene_core::resilience`) together make a strong, checkable
//! promise: **no silently-wrong answer escapes**. This module packages
//! that promise as three reusable properties:
//!
//! * [`assert_fault_trichotomy`] — under any seeded single-fault plan the
//!   outcome is exactly one of {converged within tolerance, recovered
//!   within tolerance, structured error}. The residual of every accepted
//!   solution is *independently* recomputed here (f64 SpMV against the
//!   original system), so a corrupted device cannot vouch for itself —
//!   the SDC escape rate over the swept fault classes must be zero.
//! * [`assert_faulted_determinism`] — a faulted solve replays
//!   bit-identically: same solution bits, same cycle counts, same
//!   resilience record (or the same structured error) across repeated
//!   runs and across both host executors.
//! * [`assert_zero_overhead_when_off`] — with no fault plan and the inert
//!   default [`RecoveryPolicy`], the runner emits *exactly* the pre-fault
//!   program: solution bits, device cycles and label partitions match a
//!   plain solve, no `checkpoint` label appears, and the report carries
//!   no resilience section.

use std::rc::Rc;

use dsl::prelude::IpuModel;
use graph::ExecutorKind;
use graphene_core::config::SolverConfig;
use graphene_core::runner::{solve, SolveOptions, SolveResult};
use graphene_core::{RecoveryPolicy, SolveError, SolveStatus};
use ipu_sim::fault::FaultPlan;
use sparse::formats::CsrMatrix;

use crate::oracle;

fn sim_opts(tiles: usize) -> SolveOptions {
    SolveOptions {
        model: IpuModel::tiny(tiles),
        tiles: Some(tiles),
        record_history: false,
        ..SolveOptions::default()
    }
}

/// How one faulted case ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultOutcome {
    /// First attempt converged (the fault missed, was benign, or was
    /// absorbed by the iteration).
    Converged,
    /// At least one detection → rollback/restart/degradation preceded a
    /// healthy finish.
    Recovered,
    /// A structured [`SolveError`] surfaced.
    Errored,
}

/// What the trichotomy sweep observed.
#[derive(Clone, Debug, Default)]
pub struct TrichotomyReport {
    pub cases: u32,
    pub converged: u32,
    pub recovered: u32,
    pub errored: u32,
    /// Cases in which at least one injected fault actually fired.
    pub faults_fired: u32,
}

/// Residual acceptance bound for an accepted solution: the runner's own
/// judge admits up to `tolerance × 100` (host-recomputed true residual vs
/// the device's recursive-f32 convergence test), and this independent
/// check allows the same safety factor.
const ACCEPT_SAFETY: f64 = 100.0;

/// Sweep seeded single-fault plans over one system/config and assert the
/// trichotomy for every seed. `rel_tol` must match the configuration's
/// outermost tolerance (it bounds what "within tolerance" means here).
pub fn assert_fault_trichotomy(
    a: Rc<CsrMatrix>,
    b: &[f64],
    config: &SolverConfig,
    rel_tol: f64,
    seeds: impl IntoIterator<Item = u64>,
) -> TrichotomyReport {
    let mut rep = TrichotomyReport::default();
    // Measure the healthy program once so seeded coordinates actually land
    // inside it (the grammar's default smax=4096 outruns small solves).
    let probe = solve(a.clone(), b, config, &sim_opts(2)).expect("healthy probe solve");
    let smax = probe.stats.supersteps().max(2);
    for seed in seeds {
        let spec = format!("seed={seed};n=1;classes=flip+xflip+xdrop+stall;smax={smax};wmax=16");
        let plan = FaultPlan::parse(&spec).expect("fault spec parses");
        let opts = SolveOptions { faults: Some(plan), ..sim_opts(2) };
        rep.cases += 1;
        match solve(a.clone(), b, config, &opts) {
            Ok(res) => {
                // Independent ground truth: recompute ‖b − A·x‖/‖b‖ in
                // f64 from the returned solution. A silently corrupted
                // answer fails here no matter what the runner recorded.
                let true_rel = oracle::rel_residual(&a, &res.x, b);
                assert!(
                    true_rel <= rel_tol * ACCEPT_SAFETY,
                    "seed {seed}: accepted solution has true residual {true_rel:.3e} \
                     (bound {:.3e}) — an SDC escaped",
                    rel_tol * ACCEPT_SAFETY
                );
                let resil = res
                    .report
                    .resilience
                    .as_ref()
                    .expect("faulted solve must stamp a resilience section");
                if !resil.faults_injected.is_empty() {
                    rep.faults_fired += 1;
                }
                match res.status {
                    SolveStatus::Converged => rep.converged += 1,
                    SolveStatus::Recovered => {
                        assert!(
                            resil.attempts > 1,
                            "seed {seed}: Recovered status with a single attempt"
                        );
                        assert!(
                            !resil.detections.is_empty(),
                            "seed {seed}: Recovered status without a detection record"
                        );
                        rep.recovered += 1;
                    }
                    SolveStatus::MaxIters => panic!(
                        "seed {seed}: faulted solve accepted MaxIters (residual {:.3e}) — \
                         the resilient policy must either converge, recover or error",
                        res.residual
                    ),
                }
            }
            Err(e) => {
                // Structured failure is an allowed leg of the trichotomy,
                // but it must be a *detector* verdict, not a panic and
                // not a config complaint (the inputs are valid).
                match e {
                    SolveError::NonFinite { .. }
                    | SolveError::Diverged { .. }
                    | SolveError::Stagnated { .. }
                    | SolveError::ToleranceNotReached { .. }
                    | SolveError::Breakdown(_) => rep.errored += 1,
                    other => panic!("seed {seed}: unexpected error class {other:?}"),
                }
            }
        }
    }
    assert_eq!(rep.cases, rep.converged + rep.recovered + rep.errored);
    rep
}

fn fingerprint(r: &SolveResult) -> (Vec<u64>, u64, u64, Vec<(String, [u64; 3])>) {
    (
        r.x.iter().map(|v| v.to_bits()).collect(),
        r.stats.device_cycles(),
        r.stats.exchange_bytes(),
        r.stats.labels_by_phase_sorted(),
    )
}

/// Run the same faulted solve twice per executor and require identical
/// outcomes — bit-identical solutions, cycle-identical stats and an equal
/// resilience record, or exactly the same structured error.
pub fn assert_faulted_determinism(a: Rc<CsrMatrix>, b: &[f64], config: &SolverConfig, spec: &str) {
    let plan = FaultPlan::parse(spec).expect("fault spec parses");
    let run = |kind: ExecutorKind| {
        let opts = SolveOptions { faults: Some(plan.clone()), executor: Some(kind), ..sim_opts(2) };
        solve(a.clone(), b, config, &opts)
    };
    for kind in [ExecutorKind::Sequential, ExecutorKind::Parallel] {
        match (run(kind), run(kind)) {
            (Ok(r1), Ok(r2)) => {
                assert_eq!(
                    fingerprint(&r1),
                    fingerprint(&r2),
                    "faulted solve drifted between identical runs ({kind:?})"
                );
                assert_eq!(r1.status, r2.status, "status drifted ({kind:?})");
                assert_eq!(
                    r1.report.resilience, r2.report.resilience,
                    "resilience record drifted ({kind:?})"
                );
            }
            (Err(e1), Err(e2)) => {
                assert_eq!(e1, e2, "faulted solve error drifted ({kind:?})")
            }
            (r1, r2) => panic!(
                "faulted solve outcome class drifted ({kind:?}): {:?} vs {:?}",
                r1.map(|r| r.residual),
                r2.map(|r| r.residual)
            ),
        }
    }
    // And the two executors must agree with each other (the fault layer
    // keys on superstep coordinates, not host scheduling).
    match (run(ExecutorKind::Sequential), run(ExecutorKind::Parallel)) {
        (Ok(rs), Ok(rp)) => {
            assert_eq!(
                fingerprint(&rs),
                fingerprint(&rp),
                "faulted solve differs between executors"
            );
            assert_eq!(rs.report.resilience, rp.report.resilience);
        }
        (Err(es), Err(ep)) => assert_eq!(es, ep, "faulted error differs between executors"),
        (rs, rp) => panic!(
            "faulted outcome class differs between executors: {:?} vs {:?}",
            rs.map(|r| r.residual),
            rp.map(|r| r.residual)
        ),
    }
}

/// With faults off and the inert default policy, the solve must be
/// bit-identical to a plain run: same solution, same cycles, same label
/// partition, no `checkpoint` label, no resilience section.
pub fn assert_zero_overhead_when_off(a: Rc<CsrMatrix>, b: &[f64], config: &SolverConfig) {
    let plain = solve(a.clone(), b, config, &sim_opts(2)).expect("plain solve");
    let armed_off =
        SolveOptions { faults: None, recovery: Some(RecoveryPolicy::default()), ..sim_opts(2) };
    let off = solve(a.clone(), b, config, &armed_off).expect("policy-off solve");
    assert_eq!(
        fingerprint(&plain),
        fingerprint(&off),
        "inert recovery policy perturbed the program"
    );
    assert_eq!(off.status, plain.status);
    assert!(
        off.report.resilience.is_none(),
        "healthy un-faulted solve must not stamp a resilience section"
    );
    assert!(
        !off.stats.labels_by_phase_sorted().iter().any(|(n, _)| n == "checkpoint"),
        "no checkpoint work may be emitted when checkpointing is off"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen::{poisson_2d_5pt, rhs_for_ones};

    fn system() -> (Rc<CsrMatrix>, Vec<f64>) {
        let a = Rc::new(poisson_2d_5pt(8, 8, 1.0));
        let b = rhs_for_ones(&a);
        (a, b)
    }

    fn cfg(rel_tol: f32) -> SolverConfig {
        SolverConfig::BiCgStab {
            max_iters: 200,
            rel_tol,
            precond: Some(Box::new(SolverConfig::Ilu0 {})),
        }
    }

    #[test]
    fn seeded_single_faults_obey_the_trichotomy() {
        let (a, b) = system();
        let cases = crate::cases_from_env(8) as u64;
        let rep = assert_fault_trichotomy(a, &b, &cfg(1e-6), 1e-6, 1..=cases);
        assert_eq!(rep.cases as u64, cases);
        // The sweep is only meaningful if the plans actually fire.
        assert!(rep.faults_fired > 0, "no seeded fault ever fired: {rep:?}");
    }

    #[test]
    fn faulted_solve_replays_bit_identically() {
        let (a, b) = system();
        assert_faulted_determinism(a, &b, &cfg(1e-6), "seed=11;n=2;classes=flip+xflip+xdrop");
    }

    #[test]
    fn explicit_fault_coordinates_replay_bit_identically() {
        let (a, b) = system();
        assert_faulted_determinism(a, &b, &cfg(1e-6), "flip@s60.t1:w5.b30;stall@s10.t0:c500");
    }

    #[test]
    fn recovery_machinery_costs_nothing_when_off() {
        let (a, b) = system();
        assert_zero_overhead_when_off(a, &b, &cfg(1e-6));
    }
}
