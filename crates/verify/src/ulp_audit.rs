//! ULP audit of the double-word (f32-pair) primitives.
//!
//! Sweeps `twofloat::joldes` over randomised and adversarial operands and
//! checks three things against an f64 reference:
//!
//! 1. **Error bounds** — each operation's relative error stays within the
//!    bound proved by Joldes, Muller and Popescu (TOMS 44(2), 2017):
//!    2u² (`add_dw_f`, `mul_dw_f`), 3u² (`add_dw_dw`, `div_dw_f`),
//!    5u² (`mul_dw_dw`), 15u² (`div_dw_dw`), a few u² (`sqrt_dw`), with
//!    u = 2⁻²⁴. The f64 reference itself carries ≤ 2⁻⁵³ relative error,
//!    absorbed into a small additive slack.
//! 2. **Normalisation** — results are normalised pairs: `hi ⊕ lo == hi`
//!    in f32 (equivalently `|lo| ≤ ulp(hi)/2`), even for subnormal,
//!    near-overflow and mixed-sign operands. This is the invariant that
//!    keeps error bounds composable across chained operations — exactly
//!    what MPIR relies on.
//! 3. **The sloppy-add restriction is real** — `add_dw_dw_sloppy`'s bound
//!    only covers same-sign operands; the audit both checks that bound
//!    *and* demonstrates the catastrophic loss on cancelling operands
//!    that the accurate variant avoids (a differential property: same
//!    operands, both variants).
//!
//! Case counts scale with `GRAPHENE_VERIFY_CASES` (see
//! [`crate::cases_from_env`]).

use proptest::TestRng;
use twofloat::joldes;

/// u = 2⁻²⁴, the unit roundoff of f32.
pub const U: f64 = 1.0 / (1u64 << 24) as f64;

/// Bound `k·u²` plus slack for the f64 reference's own rounding.
fn bound(k: f64) -> f64 {
    k * U * U + 1e-15
}

/// Outcome of one audited operation sweep.
#[derive(Clone, Debug)]
pub struct Audit {
    pub op: &'static str,
    pub checked: u64,
    /// Largest relative error observed (should sit below the bound).
    pub max_rel: f64,
}

/// Split an f64 into a normalised f32 double-word pair.
fn dw(v: f64) -> (f32, f32) {
    let hi = v as f32;
    let lo = (v - hi as f64) as f32;
    (hi, lo)
}

/// Value of a pair, exactly (both components are f32, so this is exact
/// in f64).
fn val(p: (f32, f32)) -> f64 {
    p.0 as f64 + p.1 as f64
}

/// Random double-word operand: sign · 2^e · mantissa with e ∈ [−30, 30],
/// well inside f32 range so tight-bound arithmetic never over/underflows.
fn rand_dw(rng: &mut TestRng) -> (f32, f32) {
    let sign = if rng.below(2) == 0 { 1.0 } else { -1.0 };
    let e = rng.below(61) as i32 - 30;
    let mant = 1.0 + rng.unit_f64();
    dw(sign * mant * (2.0f64).powi(e))
}

fn rel_err(got: f64, exact: f64) -> f64 {
    if exact == 0.0 {
        if got == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        ((got - exact) / exact).abs()
    }
}

/// Assert a pair is normalised: adding `lo` onto `hi` in f32 must not
/// move `hi`.
fn assert_normalised(op: &str, x: (f32, f32), y: (f32, f32), r: (f32, f32)) {
    if r.0.is_nan() || r.1.is_nan() {
        return; // invalid operation; nothing to normalise
    }
    if r.0.is_finite() && r.1.is_finite() {
        assert!(
            r.0 + r.1 == r.0,
            "{op}: result ({:e}, {:e}) not normalised for x=({:e},{:e}) y=({:e},{:e})",
            r.0,
            r.1,
            x.0,
            x.1,
            y.0,
            y.1,
        );
    }
}

fn check(op: &'static str, x: (f32, f32), y: (f32, f32), r: (f32, f32), exact: f64, k: f64) -> f64 {
    assert_normalised(op, x, y, r);
    let rel = rel_err(val(r), exact);
    assert!(
        rel <= bound(k),
        "{op}: relative error {rel:.3e} exceeds {k}u\u{b2} bound {:.3e}\n  x = ({:e}, {:e})\n  y = ({:e}, {:e})\n  got {:.17e} want {:.17e}",
        bound(k),
        x.0,
        x.1,
        y.0,
        y.1,
        val(r),
        exact,
    );
    rel
}

/// Audit the additions (dw+f, dw+dw accurate) over random and
/// near-cancelling operands.
pub fn audit_add(cases: u32) -> Audit {
    let mut rng = TestRng::from_name("verify::ulp::add");
    let mut max_rel = 0.0f64;
    let mut checked = 0u64;
    for i in 0..cases {
        let x = rand_dw(&mut rng);
        let y = rand_dw(&mut rng);
        let r = joldes::add_dw_dw(x.0, x.1, y.0, y.1);
        max_rel = max_rel.max(check("add_dw_dw", x, y, r, val(x) + val(y), 3.2));

        let f = rand_dw(&mut rng).0;
        let r = joldes::add_dw_f(x.0, x.1, f);
        max_rel = max_rel.max(check("add_dw_f", x, (f, 0.0), r, val(x) + f as f64, 2.1));

        // Near-cancellation: y ≈ −x with a gap of 2^−k, k ∈ [1, 28]. The
        // accurate algorithm's bound is unconditional; this is where a
        // buggy renormalisation shows first.
        let k = 1 + (i % 28) as i32;
        let y = dw(-val(x) * (1.0 + (2.0f64).powi(-k)));
        let r = joldes::add_dw_dw(x.0, x.1, y.0, y.1);
        max_rel = max_rel.max(check("add_dw_dw(cancel)", x, y, r, val(x) + val(y), 3.2));
        checked += 3;
    }
    Audit { op: "add", checked, max_rel }
}

/// Audit the multiplications (dw×f, dw×dw).
pub fn audit_mul(cases: u32) -> Audit {
    let mut rng = TestRng::from_name("verify::ulp::mul");
    let mut max_rel = 0.0f64;
    let mut checked = 0u64;
    for _ in 0..cases {
        let x = rand_dw(&mut rng);
        let y = rand_dw(&mut rng);
        let r = joldes::mul_dw_dw(x.0, x.1, y.0, y.1);
        max_rel = max_rel.max(check("mul_dw_dw", x, y, r, val(x) * val(y), 5.0));

        let f = rand_dw(&mut rng).0;
        let r = joldes::mul_dw_f(x.0, x.1, f);
        max_rel = max_rel.max(check("mul_dw_f", x, (f, 0.0), r, val(x) * f as f64, 2.1));
        checked += 2;
    }
    Audit { op: "mul", checked, max_rel }
}

/// Audit the divisions (dw÷f, dw÷dw).
pub fn audit_div(cases: u32) -> Audit {
    let mut rng = TestRng::from_name("verify::ulp::div");
    let mut max_rel = 0.0f64;
    let mut checked = 0u64;
    for _ in 0..cases {
        let x = rand_dw(&mut rng);
        let y = rand_dw(&mut rng);
        let r = joldes::div_dw_dw(x.0, x.1, y.0, y.1);
        max_rel = max_rel.max(check("div_dw_dw", x, y, r, val(x) / val(y), 15.0));

        let f = rand_dw(&mut rng).0;
        let r = joldes::div_dw_f(x.0, x.1, f);
        max_rel = max_rel.max(check("div_dw_f", x, (f, 0.0), r, val(x) / f as f64, 3.2));
        checked += 2;
    }
    Audit { op: "div", checked, max_rel }
}

/// Audit the square root on positive operands.
pub fn audit_sqrt(cases: u32) -> Audit {
    let mut rng = TestRng::from_name("verify::ulp::sqrt");
    let mut max_rel = 0.0f64;
    let mut checked = 0u64;
    for _ in 0..cases {
        let mut x = rand_dw(&mut rng);
        if x.0 < 0.0 {
            x = (-x.0, -x.1);
        }
        let r = joldes::sqrt_dw(x.0, x.1);
        max_rel = max_rel.max(check("sqrt_dw", x, (0.0, 0.0), r, val(x).sqrt(), 4.0));
        checked += 1;
    }
    Audit { op: "sqrt", checked, max_rel }
}

/// Audit the sloppy addition: within its documented same-sign bound, and
/// demonstrably *outside* any u²-level bound on cancelling operands where
/// the accurate variant stays tight. Returns (same-sign audit, worst
/// cancelling-operand relative error of the sloppy variant).
pub fn audit_sloppy(cases: u32) -> (Audit, f64) {
    let mut rng = TestRng::from_name("verify::ulp::sloppy");
    let mut max_rel = 0.0f64;
    let mut checked = 0u64;
    for _ in 0..cases {
        // Same sign: bound 3u² holds.
        let x = rand_dw(&mut rng);
        let y = {
            let cand = rand_dw(&mut rng);
            if (cand.0 < 0.0) == (x.0 < 0.0) {
                cand
            } else {
                (-cand.0, -cand.1)
            }
        };
        let r = joldes::add_dw_dw_sloppy(x.0, x.1, y.0, y.1);
        max_rel = max_rel.max(check("add_dw_dw_sloppy(same sign)", x, y, r, val(x) + val(y), 3.2));
        checked += 1;
    }

    // Opposite signs with exact hi-cancellation: the entire result is
    // carried by the low words, where the sloppy variant rounds at full
    // f32 precision (error ~u, seven orders above the u² bound) while the
    // accurate variant stays exact.
    let mut worst_sloppy = 0.0f64;
    for _ in 0..cases.max(64) {
        let x = rand_dw(&mut rng);
        // y = (−xh, yl) with |yl| ∈ [0.125, 0.5)·|yh|·u — comparable to
        // xl, small enough that the pair stays normalised, and *large*
        // enough that the pair value stays exactly representable in the
        // f64 reference (a hi/lo exponent gap beyond 29 bits would make
        // `val` itself round).
        let sign = if rng.below(2) == 0 { 1.0 } else { -1.0 };
        let yl = (sign * (0.25 + 0.75 * rng.unit_f64()) * x.0.abs() as f64 * (0.5 * U)) as f32;
        let y = (-x.0, yl);
        let exact = val(x) + val(y);
        if exact == 0.0 {
            continue;
        }
        let sloppy = joldes::add_dw_dw_sloppy(x.0, x.1, y.0, y.1);
        let accurate = joldes::add_dw_dw(x.0, x.1, y.0, y.1);
        // The accurate variant keeps its bound even here.
        check("add_dw_dw(hi-cancel)", x, y, accurate, exact, 3.2);
        worst_sloppy = worst_sloppy.max(rel_err(val(sloppy), exact));
    }
    (Audit { op: "sloppy_add", checked, max_rel }, worst_sloppy)
}

/// Normalisation-only audit over wild operands: subnormals, near-overflow
/// magnitudes and huge exponent gaps. No error bound is asserted (the
/// Joldes bounds assume no over/underflow); the *invariant* that survives
/// is normalisation of every finite result.
pub fn audit_normalisation_extremes() -> u64 {
    let specials: Vec<(f32, f32)> = vec![
        (0.0, 0.0),
        (-0.0, 0.0),
        (f32::MIN_POSITIVE, 0.0),
        (-f32::MIN_POSITIVE, 0.0),
        (1.0e-45, 0.0), // smallest subnormal
        (f32::MAX / 2.0, 0.0),
        (-f32::MAX / 2.0, 0.0),
        (1.0, f32::MIN_POSITIVE), // huge hi/lo exponent gap
        (1.0e30, -1.0e22),
        (1.0e-30, 1.0e-38),
        (3.0, -1.1920929e-7), // lo = -ulp(hi)/2 boundary
    ];
    let mut checked = 0u64;
    for &x in &specials {
        for &y in &specials {
            let pairs = [
                ("add", joldes::add_dw_dw(x.0, x.1, y.0, y.1)),
                ("sub", joldes::sub_dw_dw(x.0, x.1, y.0, y.1)),
                ("mul", joldes::mul_dw_dw(x.0, x.1, y.0, y.1)),
            ];
            for (op, r) in pairs {
                assert_normalised(op, x, y, r);
                checked += 1;
            }
            if y.0 != 0.0 {
                let r = joldes::div_dw_dw(x.0, x.1, y.0, y.1);
                assert_normalised("div", x, y, r);
                checked += 1;
            }
            if x.0 >= 0.0 {
                let r = joldes::sqrt_dw(x.0, x.1);
                assert_normalised("sqrt", x, y, r);
                checked += 1;
            }
        }
    }
    checked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dw_split_is_normalised_and_exact() {
        for v in [1.0 + 1e-9, std::f64::consts::PI, -1234.56789, 1e-20] {
            let p = dw(v);
            assert_eq!(p.0 + p.1, p.0);
            assert!((val(p) - v).abs() <= v.abs() * 2.0 * U * U);
        }
    }

    #[test]
    fn quick_audits_pass() {
        // Small counts here; the root test target runs the full sweep.
        assert!(audit_add(64).max_rel <= bound(3.2));
        assert!(audit_mul(64).max_rel <= bound(5.0));
        assert!(audit_div(64).max_rel <= bound(15.0));
        assert!(audit_sqrt(64).max_rel <= bound(4.0));
    }

    #[test]
    fn sloppy_add_loses_on_cancellation() {
        let (same_sign, worst) = audit_sloppy(64);
        assert!(same_sign.max_rel <= bound(3.2));
        assert!(
            worst > 1e-9,
            "expected catastrophic sloppy-add error on cancelling operands, got {worst:.3e}"
        );
    }

    #[test]
    fn extremes_stay_normalised() {
        assert!(audit_normalisation_extremes() > 300);
    }
}
