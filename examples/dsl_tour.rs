//! A tour of CodeDSL and TensorDSL — the paper's Figure 1, extended.
//!
//! Shows the two-language programming model: CodeDSL for tile-local
//! element manipulation (filling a tensor with the Leibniz sequence),
//! TensorDSL for global algebra (reduction to π, expression fusion,
//! control flow via the control-flow stack), host callbacks, and what the
//! "graph program" actually looks like (compute sets, schedule size,
//! cycle profile).
//!
//! ```sh
//! cargo run --release --example dsl_tour
//! ```

use graphene::dsl::prelude::*;

fn main() {
    let tiles = 8;
    let n = 100_000;
    let mut ctx = DslCtx::new(IpuModel::tiny(tiles));

    // --- Create a TensorDSL tensor distributed across the tiles. -------
    let x = ctx.vector("x", DType::F32, n, tiles);

    // --- Fill it with the Leibniz sequence using CodeDSL. --------------
    // CodeDSL is tile-centric: the codelet sees only its slice, so each
    // vertex also receives its slice's global offset.
    let mut cb = CodeDsl::new("leibniz");
    let xs = cb.param(DType::F32, true);
    let offset = cb.param(DType::I32, false);
    cb.par_for(Val::i32(0), xs.len(), |cb, i| {
        let g = cb.let_(i.clone() + offset.at(Val::i32(0)));
        let sign = Val::select(g.clone().rem(2).eq_(Val::i32(0)), Val::f32(1.0), Val::f32(-1.0));
        cb.store(xs, i, sign / (g * 2 + Val::i32(1)).to(DType::F32));
    });
    let leibniz = ctx.add_codelet(cb.build());

    let offsets = ctx.vector("offsets", DType::I32, tiles, tiles);
    let chunks = ctx.chunks_of(x).to_vec();
    let vertices = chunks
        .iter()
        .enumerate()
        .map(|(k, c)| Vertex {
            tile: c.tile,
            codelet: leibniz,
            operands: vec![
                TensorSlice { tensor: x.id, start: c.start, len: c.owned },
                TensorSlice { tensor: offsets.id, start: k, len: 1 },
            ],
            kind: VertexKind::Simple,
        })
        .collect();
    ctx.execute("fill_leibniz", vertices);

    // --- Calculate pi from the sequence using TensorDSL. ---------------
    // `x * 4` builds an expression object; `reduce` materialises it fused
    // into the per-tile reduction loop — no temporary tensor.
    let pi = ctx.reduce(x * 4.0f32);

    // --- Control flow through the control-flow stack. ------------------
    let found = ctx.scalar("found", DType::Bool);
    #[allow(clippy::approx_constant)] // the paper's Figure 1 uses 3.141f
    let close = (pi - 3.141f32).abs().lt(0.001f32);
    ctx.assign(found, close);
    let pi_id = pi.id;
    ctx.if_else(
        found,
        move |ctx| {
            ctx.callback(move |view| {
                println!("We found pi! ({:.7})", view.read_scalar(pi_id));
            })
        },
        |ctx| {
            ctx.callback(|_| println!("pi eluded us"));
        },
    );

    // --- Compile (graph compilation) and execute. ----------------------
    println!(
        "graph: {} compute sets, {} codelets, {} tensors",
        ctx.graph().compute_sets.len(),
        ctx.graph().codelets.len(),
        ctx.graph().tensors.len()
    );
    let mut engine = ctx.build_engine().expect("tour compiles");
    let offs: Vec<f64> = chunks.iter().map(|c| c.start as f64).collect();
    engine.write_tensor(offsets.id, &offs);
    engine.run();

    let got = engine.read_scalar(pi.id);
    println!("pi = {got:.7} (error {:.2e})", (got - std::f64::consts::PI).abs());
    println!(
        "device: {} cycles = {:.2} us at 1.325 GHz",
        engine.stats().device_cycles(),
        engine.elapsed_seconds() * 1e6
    );
    assert!((got - std::f64::consts::PI).abs() < 1e-3);
}
