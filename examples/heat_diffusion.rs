//! Implicit heat diffusion — the CFD-style workload the paper's
//! introduction motivates.
//!
//! Solves ∂T/∂t = αΔT on a 2D plate with backward-Euler time stepping:
//! every step is a sparse solve `(I + αΔt·L) T^{n+1} = T^n`. The system
//! matrix is fixed, so the ILU(0) factorisation is computed **once** on
//! the device and reused across all time steps — the property §V-E calls
//! out. A hot square in the centre of the plate diffuses outward; the
//! example prints an ASCII rendering of the temperature field as it
//! spreads, plus the device time per step.
//!
//! ```sh
//! cargo run --release --example heat_diffusion
//! ```

use std::rc::Rc;

use graphene::dsl::prelude::*;
use graphene::graphene_core::dist::DistSystem;
use graphene::graphene_core::solvers::{BiCgStab, Ilu0, Solver};
use graphene::sparse::formats::CooMatrix;
use graphene::sparse::partition::Partition;

const N: usize = 32; // plate is N x N
const STEPS: u32 = 24;
const ALPHA_DT: f64 = 0.3;

fn main() {
    // System matrix: I + alpha*dt * (2D 5-point Laplacian).
    let lap = graphene::sparse::gen::poisson_2d_5pt(N, N, 1.0);
    let mut coo = CooMatrix::new(N * N, N * N);
    for i in 0..lap.nrows {
        let (cols, vals) = lap.row(i);
        for (c, v) in cols.iter().zip(vals) {
            coo.push(i, *c as usize, ALPHA_DT * v);
        }
        coo.push(i, i, 1.0);
    }
    let a = Rc::new(coo.to_csr());

    // Distribute over 16 tiles and build the time-stepping program:
    // factorise once, then Repeat(STEPS) { solve; T^n <- T^{n+1}; report }.
    let part = Partition::grid_2d(N, N, 4, 4);
    let mut ctx = DslCtx::new(IpuModel::tiny(16));
    let sys = DistSystem::build(&mut ctx, a.clone(), part);
    let t_now = sys.new_vector(&mut ctx, "t_now", DType::F32);
    let t_next = sys.new_vector(&mut ctx, "t_next", DType::F32);

    let mut solver = BiCgStab::new(60, 1e-6, Some(Box::new(Ilu0::new()) as Box<dyn Solver>));
    solver.setup(&mut ctx, &sys); // ILU(0) factorisation happens here, once
    ctx.repeat(STEPS, |ctx| {
        graphene::graphene_core::solvers::zero(ctx, t_next);
        solver.solve(ctx, &sys, t_now, t_next);
        ctx.copy(t_next, t_now);
    });

    let mut engine = ctx.build_engine().expect("time-stepping program compiles");
    sys.upload(&mut engine);

    // Initial condition: a hot square in the middle of a cold plate.
    let mut t0 = vec![0.0f64; N * N];
    for y in N / 2 - 3..N / 2 + 3 {
        for x in N / 2 - 3..N / 2 + 3 {
            t0[y * N + x] = 100.0;
        }
    }
    engine.write_tensor(t_now.id, &sys.to_device_order(&t0));
    let total_heat0: f64 = t0.iter().sum();

    engine.run();

    let t_final = sys.from_device_order(&engine.read_tensor(t_now.id));
    println!("initial field:");
    render(&t0);
    println!(
        "\nafter {STEPS} implicit steps (device time {:.3} ms):",
        engine.elapsed_seconds() * 1e3
    );
    render(&t_final);

    let peak0 = t0.iter().cloned().fold(0.0, f64::max);
    let peak = t_final.iter().cloned().fold(0.0, f64::max);
    println!("\npeak temperature: {peak0:.1} -> {peak:.1}");
    println!(
        "heat lost through the cold boundary: {:.1}%",
        100.0 * (1.0 - t_final.iter().sum::<f64>() / total_heat0)
    );
    assert!(peak < peak0 * 0.7, "diffusion must flatten the hot spot");
    assert!(t_final.iter().all(|&v| v > -1e-3), "no negative temperatures");
}

fn render(field: &[f64]) {
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    for y in (0..N).step_by(2) {
        let mut line = String::with_capacity(N);
        for x in 0..N {
            let v = field[y * N + x].clamp(0.0, 100.0);
            line.push(shades[((v / 100.0) * (shades.len() - 1) as f64).round() as usize]);
        }
        println!("  {line}");
    }
}
