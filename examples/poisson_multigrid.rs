//! Geometric two-grid solution of a 3D Poisson problem — the multigrid
//! setting the paper's §V-D alludes to (Gauss-Seidel "as a smoother in
//! multigrid algorithms"), assembled from the framework's pieces:
//! level-set scheduled GS smoothing, tile-local grid transfers, and a
//! Krylov coarse solve, all in one device program.
//!
//! Compares plain smoothing, the two-grid cycle, and BiCGStab+ILU(0) on
//! the same problem, in device time and cycles.
//!
//! ```sh
//! cargo run --release --example poisson_multigrid
//! ```

use std::rc::Rc;

use graphene::dsl::prelude::*;
use graphene::graphene_core::dist::DistSystem;
use graphene::graphene_core::solvers::{BiCgStab, GaussSeidel, Ilu0, Solver, TwoGrid};
use graphene::sparse::gen::{poisson_3d_7pt, rhs_for_ones, Grid3};
use graphene::sparse::partition::Partition;

const CYCLES: u32 = 8;

fn main() {
    let fg = Grid3 { nx: 24, ny: 24, nz: 24 };
    let a = Rc::new(poisson_3d_7pt(fg.nx, fg.ny, fg.nz));
    let bs = rhs_for_ones(&a);
    println!("poisson {}x{}x{}: {} rows, {} nnz, 8 tiles\n", fg.nx, fg.ny, fg.nz, a.nrows, a.nnz());
    println!("method                      rel_residual   device_ms   cycles");

    // 1. Gauss-Seidel smoothing only (4 sweeps per "cycle").
    run("gauss-seidel x32 sweeps   ", &a, &bs, fg, |ctx, sys, b, x| {
        let mut gs = GaussSeidel::new(4, false);
        gs.setup(ctx, sys);
        ctx.repeat(CYCLES, |ctx| gs.solve(ctx, sys, b, x));
        None
    });

    // 2. Two-grid V(2,2) with a BiCGStab coarse solve.
    run("two-grid V(2,2) x8 cycles ", &a, &bs, fg, |ctx, sys, b, x| {
        let coarse = Box::new(BiCgStab::new(60, 1e-7, None));
        let mut tg = TwoGrid::new(fg, (2, 2, 2), 2, 2, coarse);
        tg.setup(ctx, sys);
        ctx.repeat(CYCLES, |ctx| tg.solve(ctx, sys, b, x));
        Some(tg)
    });

    // 3. The paper's workhorse for reference.
    run("bicgstab+ilu(0) to 1e-6   ", &a, &bs, fg, |ctx, sys, b, x| {
        let mut s = BiCgStab::new(200, 1e-6, Some(Box::new(Ilu0::new()) as Box<dyn Solver>));
        s.setup(ctx, sys);
        s.solve(ctx, sys, b, x);
        None
    });
}

fn run(
    name: &str,
    a: &Rc<graphene::sparse::CsrMatrix>,
    bs: &[f64],
    fg: Grid3,
    build: impl FnOnce(&mut DslCtx, &DistSystem, TensorRef, TensorRef) -> Option<TwoGrid>,
) {
    let part = Partition::grid_3d(fg, 2, 2, 2);
    let mut ctx = DslCtx::new(IpuModel::tiny(8));
    let sys = DistSystem::build(&mut ctx, a.clone(), part);
    let b = sys.new_vector(&mut ctx, "b", DType::F32);
    let x = sys.new_vector(&mut ctx, "x", DType::F32);
    let tg = build(&mut ctx, &sys, b, x);
    let mut e = ctx.build_engine().expect("program compiles");
    sys.upload(&mut e);
    if let Some(tg) = &tg {
        tg.upload(&mut e);
    }
    e.write_tensor(b.id, &sys.to_device_order(bs));
    e.run();
    let got = sys.from_device_order(&e.read_tensor(x.id));
    let r2: f64 = a.spmv_alloc(&got).iter().zip(bs).map(|(ax, b)| (ax - b) * (ax - b)).sum();
    let b2: f64 = bs.iter().map(|v| v * v).sum();
    println!(
        "{name}  {:>10.3e}   {:>8.3}   {}",
        (r2 / b2).sqrt(),
        e.elapsed_seconds() * 1e3,
        e.stats().device_cycles()
    );
}
