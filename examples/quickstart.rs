//! Quickstart: solve a sparse linear system on the simulated IPU.
//!
//! Builds a 3D Poisson problem, configures the paper's flagship solver
//! stack from JSON — MPIR(double-word) { PBiCGStab { ILU(0) } } — runs it
//! on a simulated Mk2 IPU, and prints the solution quality and the device
//! cycle profile.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::rc::Rc;

use graphene::graphene_core::config::SolverConfig;
use graphene::graphene_core::runner::{solve_or_panic, SolveOptions};
use graphene::ipu_sim::{IpuModel, Phase};
use graphene::sparse::gen;

fn main() {
    // 1. A problem: -Δu = f on a 24³ grid, with the exact solution u = 1.
    let a = Rc::new(gen::poisson_3d_7pt(24, 24, 24));
    let b = gen::rhs_for_ones(&a);
    println!("system: {} rows, {} non-zeros", a.nrows, a.nnz());

    // 2. A solver hierarchy, configured the way the paper does it (§V):
    //    a JSON tree where any solver preconditioned by any other.
    let config = SolverConfig::from_json(
        r#"{
            "type": "mpir",
            "precision": "double_word",
            "max_outer": 10,
            "rel_tol": 1e-12,
            "inner": {
                "type": "bi_cg_stab",
                "max_iters": 40,
                "rel_tol": 0.0,
                "precond": { "type": "ilu0" }
            }
        }"#,
    )
    .expect("valid solver config");

    // 3. The machine: one Mk2 IPU (1,472 tiles x 6 workers).
    let opts = SolveOptions { model: IpuModel::mk2(), ..SolveOptions::default() };

    // 4. Solve. This symbolically executes the solver into a dataflow
    //    graph + schedule + codelets, compiles it, and runs it on the
    //    cycle-modelled device.
    let result = solve_or_panic(a, &b, &config, &opts);

    println!("relative residual: {:.3e}", result.residual);
    println!("inner iterations:  {}", result.iterations);
    println!(
        "device time:       {:.3} ms ({} cycles)",
        result.seconds * 1e3,
        result.stats.device_cycles()
    );
    println!(
        "max error vs exact solution: {:.3e}",
        result.x.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max)
    );

    println!("\ncycle breakdown:");
    for (phase, name) in
        [(Phase::Compute, "compute"), (Phase::Exchange, "exchange"), (Phase::Sync, "sync")]
    {
        let c = result.stats.phase_cycles(phase);
        println!(
            "  {name:9} {c:>12} cycles ({:.1}%)",
            100.0 * c as f64 / result.stats.device_cycles() as f64
        );
    }
    println!("\nby solver component:");
    for (label, cycles) in result.stats.labels_sorted().into_iter().take(6) {
        println!("  {label:14} {cycles:>12} cycles");
    }

    // 5. When fault injection is armed (GRAPHENE_FAULTS=...), the report
    //    carries a resilience section: what fired, what was detected,
    //    and what it cost to recover.
    if let Some(res) = &result.report.resilience {
        println!("\nresilience ({:?}):", result.status);
        println!("  attempts: {}  restarts: {}", res.attempts, res.restarts);
        for f in &res.faults_injected {
            println!("  fault injected: {}", f.detail);
        }
        for d in &res.detections {
            println!(
                "  detected {} at iteration {} (attempt {}): {}",
                d.kind, d.iteration, d.attempt, d.detail
            );
        }
        for g in &res.degradations {
            println!("  degraded: {g}");
        }
    }

    assert!(result.residual < 1e-10, "solver should reach extended precision");
}
