//! Structural analysis with extended precision — the paper's §VI-C
//! experiment as an application.
//!
//! A shell-structure stiffness system (the af_shell7 analogue) is solved
//! on hardware with no native double precision. The example runs the same
//! PBiCGStab+ILU(0) solver under the paper's four refinement
//! configurations and prints where each stalls — demonstrating that
//! double-word MPIR recovers (better than) double-precision quality at a
//! fraction of the emulated-f64 cost.
//!
//! ```sh
//! cargo run --release --example structural_precision
//! ```

use std::rc::Rc;

use graphene::graphene_core::config::SolverConfig;
use graphene::graphene_core::runner::{solve_or_panic, SolveOptions};
use graphene::graphene_core::solvers::ExtendedPrecision;
use graphene::ipu_sim::IpuModel;
use graphene::sparse::gen;

fn main() {
    let a = Rc::new(gen::suitesparse::af_shell7_like(0.004));
    let b = gen::random_vector(a.nrows, 7);
    println!(
        "shell stiffness system: {} rows, {} nnz ({:.1} per row)\n",
        a.nrows,
        a.nnz(),
        a.nnz() as f64 / a.nrows as f64
    );

    let inner = |max_iters| SolverConfig::BiCgStab {
        max_iters,
        rel_tol: 0.0,
        precond: Some(Box::new(SolverConfig::Ilu0 {})),
    };
    let configs: [(&str, SolverConfig); 4] = [
        (
            "PBiCGStab+ILU(0), no refinement   ",
            SolverConfig::BiCgStab {
                max_iters: 300,
                rel_tol: 1e-20,
                precond: Some(Box::new(SolverConfig::Ilu0 {})),
            },
        ),
        (
            "+ IR in working precision (f32)   ",
            SolverConfig::Mpir {
                inner: Box::new(inner(60)),
                precision: ExtendedPrecision::Working,
                max_outer: 5,
                rel_tol: 1e-20,
            },
        ),
        (
            "+ MPIR, double-word arithmetic    ",
            SolverConfig::Mpir {
                inner: Box::new(inner(60)),
                precision: ExtendedPrecision::DoubleWord,
                max_outer: 5,
                rel_tol: 1e-20,
            },
        ),
        (
            "+ MPIR, emulated double precision ",
            SolverConfig::Mpir {
                inner: Box::new(inner(60)),
                precision: ExtendedPrecision::EmulatedF64,
                max_outer: 5,
                rel_tol: 1e-20,
            },
        ),
    ];

    let opts = SolveOptions {
        model: IpuModel::mk2(),
        rows_per_tile: 24,
        record_history: false,
        ..SolveOptions::default()
    };
    println!("configuration                        final residual   device ms");
    let mut floors = Vec::new();
    for (name, cfg) in configs {
        let r = solve_or_panic(a.clone(), &b, &cfg, &opts);
        println!("{name}  {:>12.3e}   {:>8.2}", r.residual, r.seconds * 1e3);
        floors.push(r.residual);
    }
    println!(
        "\ndouble-word refinement improved the convergence floor by {:.0e}x over\n\
         plain single precision — without native f64 hardware.",
        floors[0] / floors[2]
    );
    assert!(floors[2] < floors[0] * 1e-4, "MPIR-DW must beat the f32 floor");
    assert!(floors[3] <= floors[2] * 10.0, "emulated f64 at least as precise");
}
