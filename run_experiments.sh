#!/bin/sh
# Regenerate every table and figure of the paper (see DESIGN.md section 3).
# Results land in results/*.txt, with machine-readable JSON solve reports
# beside them as results/*.json (via GRAPHENE_REPORT; see DESIGN.md §8).
# Flags can be appended per-binary, e.g. `--scale 1.0` inside this script.
set -e
cd "$(dirname "$0")"
mkdir -p results
# Every binary writes its JSON report to results/<bin>.json.
GRAPHENE_REPORT="${GRAPHENE_REPORT:-results}"
export GRAPHENE_REPORT
run() { echo ">>> $1" >&2; shift; cargo run --release -q -p graphene-bench --bin "$@"; }
run "Table I"    table1                    | tee results/table1.txt
run "Tables II/III" tables23               | tee results/tables23.txt
run "Fig 5"      fig5                      | tee results/fig5.txt
run "Fig 6"      fig6                      | tee results/fig6.txt
# fig7 also writes per-backend artifacts results/fig7.<backend>.json
# (ipu-sim / cpu / gpu-model) beside the combined document.
run "Fig 7"      fig7                      | tee results/fig7.txt
run "Fig 8"      fig8                      | tee results/fig8.txt
run "Fig 9"      fig9                      | tee results/fig9.txt
run "Fig 10"     fig10                     | tee results/fig10.txt
run "Table IV"   table4                    | tee results/table4.txt
run "Ablations"  ablations                 | tee results/ablations.txt
run "Resilience" resilience                | tee results/resilience.txt
# Serving layer: throughput first, then the chaos gate (seeded storm +
# panic/poison/deadline jobs, double-run determinism, zero SDC escapes).
run "Serve (throughput)" serve             | tee results/serve.txt
run "Serve (chaos)" serve -- --chaos --out results/serve_chaos.json | tee results/serve_chaos.txt
run "Perf attribution" perf_attrib         | tee results/perf_attrib.txt
run "Native kernels" native_speedup        | tee results/native_speedup.txt
# Auto-tuner gate: cold search populates results/tune-cache, the second
# invocation must hit it and reproduce the solve bit for bit.
rm -rf results/tune-cache
run "Auto-tune (cold)" tune_cache          | tee results/tune_cache.txt
run "Auto-tune (hit)"  tune_cache -- --expect-hit | tee -a results/tune_cache.txt
# Aggregate every results/*.json artifact written above into
# results/summary.json + a markdown table at results/summary.md.
run "Summary"    summarize                 | tee results/summary.txt
echo "all experiments done"
