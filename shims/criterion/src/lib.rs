//! Offline shim for `criterion`.
//!
//! A minimal micro-benchmark harness with criterion's calling conventions:
//! `Criterion::bench_function`, `benchmark_group` + `bench_function` /
//! `bench_with_input`, `criterion_group!` (both forms), `criterion_main!`
//! and `black_box`. Each benchmark warms up briefly, then runs timed
//! batches until ~200 ms or `sample_size` batches have elapsed, and prints
//! the mean time per iteration. No statistics, no HTML reports — the
//! point is that `cargo bench` keeps working without registry access.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// (total elapsed, total iterations) accumulated by `iter`.
    samples: Vec<(Duration, u64)>,
    batch: u64,
}

impl Bencher {
    /// Run `f` repeatedly, timing one batch.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let n = self.batch;
        let t0 = Instant::now();
        for _ in 0..n {
            black_box(f());
        }
        self.samples.push((t0.elapsed(), n));
    }
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, group: name.to_string() }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function(&mut self, name: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.group, name), self.criterion.sample_size, f);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.group, id.0), self.criterion.sample_size, |b| f(b, input));
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter value.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{param}"))
    }

    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId(param.to_string())
    }
}

fn run_one(name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    // Calibration: one iteration to estimate cost and pick a batch size
    // aiming at ~10 ms per sample.
    let mut b = Bencher { samples: Vec::new(), batch: 1 };
    f(&mut b);
    let (dur, n) = *b.samples.last().unwrap_or(&(Duration::from_micros(1), 1));
    let per_iter = (dur.as_nanos().max(1) / n.max(1) as u128).max(1);
    let batch = ((10_000_000 / per_iter) as u64).clamp(1, 1_000_000);

    let mut bench = Bencher { samples: Vec::new(), batch };
    let budget = Duration::from_millis(200);
    let t0 = Instant::now();
    for _ in 0..sample_size {
        f(&mut bench);
        if t0.elapsed() > budget {
            break;
        }
    }
    let (total, iters) =
        bench.samples.iter().fold((Duration::ZERO, 0u64), |(d, n), (sd, sn)| (d + *sd, n + sn));
    let mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
    println!("{name:<50} time: [{:.1} ns/iter]  ({} iters)", mean_ns, iters);
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(2);
        let mut count = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        assert!(count > 0);
    }

    #[test]
    fn group_forms_compile_and_run() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.bench_function("f", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("with", 3), &3u64, |b, &x| b.iter(|| black_box(x * 2)));
        g.finish();
    }
}
