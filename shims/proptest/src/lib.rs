//! Offline shim for `proptest`.
//!
//! Implements the subset of proptest used by this workspace's property
//! tests, with the same surface syntax:
//!
//! * [`Strategy`] with `prop_map`, `prop_flat_map`, `boxed`;
//! * range strategies (`-1.0f64..1.0`, `2usize..30`, …), tuple strategies,
//!   [`collection::vec`], [`any`], [`Just`];
//! * the [`proptest!`] macro with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`;
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`, [`prop_oneof!`].
//!
//! Differences from the real crate: value generation is a deterministic
//! xoshiro stream seeded from the test name, and there is **no shrinking**
//! — on failure the generated inputs are printed as-is. Good enough to
//! keep the invariants enforced without registry access.

use std::ops::Range;

/// Deterministic generator used for all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn seed_from_u64(seed: u64) -> TestRng {
        let mut st = seed;
        let mut next = move || {
            st = st.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = st;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// Seed deterministically from a test name.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng::seed_from_u64(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in [0, n).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

/// Why a test case did not run to completion.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
}

/// How many cases each property runs.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U: std::fmt::Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2: Strategy, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, _why: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy { sampler: std::rc::Rc::new(move |rng: &mut TestRng| self.sample(rng)) }
    }
}

/// Type-erased strategy (what `prop_oneof!` arms are coerced to).
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    sampler: std::rc::Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sampler)(rng)
    }
}

/// Uniform choice among boxed strategies — the engine of [`prop_oneof!`].
pub fn one_of<T: std::fmt::Debug + 'static>(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    BoxedStrategy {
        sampler: std::rc::Rc::new(move |rng: &mut TestRng| {
            let i = rng.below(arms.len());
            arms[i].sample(rng)
        }),
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row");
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + v) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        (self.start as f64 + rng.unit_f64() * (self.end as f64 - self.start as f64)) as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A / 0);
    (A / 0, B / 1);
    (A / 0, B / 1, C / 2);
    (A / 0, B / 1, C / 2, D / 3);
    (A / 0, B / 1, C / 2, D / 3, E / 4);
}

/// Types with a default "anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized + std::fmt::Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> i32 {
        rng.next_u64() as i32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mix of magnitudes plus raw bit patterns (which may produce
        // infinities/NaNs — callers filter with prop_assume, as with the
        // real crate).
        match rng.below(8) {
            0 => f64::from_bits(rng.next_u64()),
            1 => (rng.unit_f64() - 0.5) * 2e-300,
            2 => (rng.unit_f64() - 0.5) * 2e300,
            3 => (rng.unit_f64() - 0.5) * 2.0,
            _ => (rng.unit_f64() - 0.5) * 2e12,
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        match rng.below(4) {
            0 => f32::from_bits((rng.next_u64() >> 32) as u32),
            1 => ((rng.unit_f64() - 0.5) * 2e-30) as f32,
            _ => ((rng.unit_f64() - 0.5) * 2e6) as f32,
        }
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors of `elem` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        vec_strategy(elem, len)
    }

    fn vec_strategy<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.start + rng.below(self.len.end.saturating_sub(self.len.start).max(1));
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Alias module so `prop::collection::vec(..)` also resolves.
pub mod prop {
    pub use super::collection;
}

/// Weighted/unweighted uniform choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::one_of(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assert inside a property; panics (failing the test) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            panic!("prop_assert failed: {}: {}", stringify!($cond), format!($($fmt)*));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            panic!(
                "prop_assert_eq failed: {} != {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            );
        }
    }};
}

/// Reject the current case (skip, do not fail) when the condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The proptest test-definition macro: each inner `fn` becomes a `#[test]`
/// that runs `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let mut ran: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(100);
                while ran < config.cases {
                    attempts += 1;
                    if attempts > max_attempts {
                        panic!(
                            "proptest {}: gave up after {} attempts ({} cases ran); \
                             prop_assume rejects too much",
                            stringify!($name), attempts, ran
                        );
                    }
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let __case: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        {
                            $(let $arg = $arg;)+
                            $body
                        }
                        ::std::result::Result::Ok(())
                    })();
                    match __case {
                        ::std::result::Result::Ok(()) => ran += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    }
                }
            }
        )*
    };
    ($($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
}

pub mod prelude {
    pub use super::{
        any, one_of, prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in 2usize..9, f in -1.0f64..1.0) {
            prop_assert!((2..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn assume_skips(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn flat_map_and_vec(v in (1usize..5).prop_flat_map(|n|
            super::collection::vec(0..n, 1..10)))
        {
            prop_assert!(!v.is_empty() && v.len() < 10);
            let max = *v.iter().max().unwrap();
            prop_assert!(max < 4);
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![
            -1.0f64..0.0,
            (0.0f64..1.0).prop_map(|v| v + 10.0),
        ]) {
            prop_assert!((-1.0..0.0).contains(&x) || (10.0..11.0).contains(&x));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
