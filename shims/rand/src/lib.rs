//! Offline shim for the `rand` crate.
//!
//! The build image has no access to a crates registry, so this workspace
//! vendors a minimal, deterministic replacement covering exactly the API
//! surface used in-tree:
//!
//! * [`rngs::SmallRng`] — a xoshiro256++ generator seeded via SplitMix64
//!   (the same construction the real `SmallRng` uses on 64-bit targets,
//!   though the exact stream differs — all in-tree consumers only rely on
//!   determinism and statistical quality, never on a specific stream);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over integer and float ranges;
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Everything is `no_std`-free plain Rust with zero dependencies.

/// Trait for seedable generators (subset of the real `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create a generator from a `u64` seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core generator trait (subset of the real `rand::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods (subset of the real `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample uniformly from a half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Sample a value of type `T` (floats in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable from the "standard" distribution.
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value of type `T` can be drawn from.
///
/// Mirrors the real crate's structure: *blanket* impls over
/// `Range<T>`/`RangeInclusive<T>` for `T: SampleUniform`. The single
/// matching impl per range type is what lets the compiler unify `T` with
/// the literal's integer type at call sites like
/// `i + rng.gen_range(0..20)` — per-type impls would leave inference
/// ambiguous (E0282).
pub trait SampleRange<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over `[low, high)` / `[low, high]`.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_in<R: RngCore>(low: Self, high: Self, inclusive: bool, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_in(*self.start(), *self.end(), true, rng)
    }
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore>(low: $t, high: $t, inclusive: bool, rng: &mut R) -> $t {
                if inclusive {
                    assert!(low <= high, "empty range in gen_range");
                } else {
                    assert!(low < high, "empty range in gen_range");
                }
                let span =
                    (high as i128 - low as i128) as u128 + if inclusive { 1 } else { 0 };
                // Multiply-shift rejection-free mapping (Lemire); the tiny
                // modulo bias (< 2^-64) is irrelevant for test data.
                let x = rng.next_u64() as u128;
                let v = (x * span) >> 64;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}
int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore>(low: $t, high: $t, _inclusive: bool, rng: &mut R) -> $t {
                assert!(low < high, "empty range in gen_range");
                let u = <$t as Standard>::sample(rng);
                low + u * (high - low)
            }
        }
    )*};
}
float_uniform!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded through SplitMix64 — deterministic, fast, good
    /// statistical quality; the shim analogue of `rand::rngs::SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// `rand::prelude` lookalike.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i: i32 = r.gen_range(-5..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn float_unit_interval_covers() {
        let mut r = SmallRng::seed_from_u64(7);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            lo |= v < 0.25;
            hi |= v > 0.75;
        }
        assert!(lo && hi, "poor coverage of [0,1)");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut SmallRng::seed_from_u64(9));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left slice untouched");
    }
}
