//! Offline shim for `rayon`.
//!
//! The build image cannot reach a crates registry, so this crate provides
//! the one parallel-iterator entry point the workspace uses —
//! `slice.par_iter_mut().enumerate().for_each(..)` — implemented with
//! `std::thread::scope` over contiguous chunks. The CPU baseline therefore
//! remains genuinely parallel (one chunk per available core), it just
//! lacks rayon's work stealing; for the regular row-block SpMV workloads
//! benchmarked here static chunking is an adequate stand-in.

/// Parallel iterator over mutable slice elements.
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

/// Enumerated variant carrying the global index of each element.
pub struct ParEnumerateMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    pub fn enumerate(self) -> ParEnumerateMut<'a, T> {
        ParEnumerateMut { slice: self.slice }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        ParEnumerateMut { slice: self.slice }.for_each(|(_, v)| f(v));
    }
}

impl<'a, T: Send> ParEnumerateMut<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Sync,
    {
        let n = self.slice.len();
        if n == 0 {
            return;
        }
        let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(n);
        if threads <= 1 {
            for (i, v) in self.slice.iter_mut().enumerate() {
                f((i, v));
            }
            return;
        }
        let chunk = n.div_ceil(threads);
        let f = &f;
        std::thread::scope(|s| {
            for (c, part) in self.slice.chunks_mut(chunk).enumerate() {
                s.spawn(move || {
                    let base = c * chunk;
                    for (i, v) in part.iter_mut().enumerate() {
                        f((base + i, v));
                    }
                });
            }
        });
    }
}

/// Extension trait mirroring `rayon::prelude::IntoParallelRefMutIterator`
/// for slices and vectors.
pub trait IntoParIterMut {
    type Item;
    fn par_iter_mut(&mut self) -> ParIterMut<'_, Self::Item>;
}

impl<T: Send> IntoParIterMut for [T] {
    type Item = T;
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { slice: self }
    }
}

impl<T: Send> IntoParIterMut for Vec<T> {
    type Item = T;
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { slice: self }
    }
}

pub mod prelude {
    pub use super::IntoParIterMut;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_for_each_visits_every_index_once() {
        let mut v = vec![0usize; 10_000];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i * 3);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * 3);
        }
    }

    #[test]
    fn empty_slice_ok() {
        let mut v: Vec<u8> = Vec::new();
        v.par_iter_mut().enumerate().for_each(|(_, _)| unreachable!());
    }

    #[test]
    fn plain_for_each_works() {
        let mut v = vec![1i64; 257];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 2));
    }
}
