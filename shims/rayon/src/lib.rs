//! Offline shim for `rayon`.
//!
//! The build image cannot reach a crates registry, so this crate provides
//! the one parallel-iterator entry point the workspace uses —
//! `slice.par_iter_mut().enumerate().for_each(..)` — implemented with
//! `std::thread::scope` over contiguous chunks. The CPU baseline therefore
//! remains genuinely parallel (one chunk per available core), it just
//! lacks rayon's work stealing; for the regular row-block SpMV workloads
//! benchmarked here static chunking is an adequate stand-in.

/// Parallel iterator over mutable slice elements.
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

/// Enumerated variant carrying the global index of each element.
pub struct ParEnumerateMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    pub fn enumerate(self) -> ParEnumerateMut<'a, T> {
        ParEnumerateMut { slice: self.slice }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        ParEnumerateMut { slice: self.slice }.for_each(|(_, v)| f(v));
    }
}

impl<'a, T: Send> ParEnumerateMut<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Sync,
    {
        let n = self.slice.len();
        if n == 0 {
            return;
        }
        let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(n);
        if threads <= 1 {
            for (i, v) in self.slice.iter_mut().enumerate() {
                f((i, v));
            }
            return;
        }
        let chunk = n.div_ceil(threads);
        let f = &f;
        std::thread::scope(|s| {
            for (c, part) in self.slice.chunks_mut(chunk).enumerate() {
                s.spawn(move || {
                    let base = c * chunk;
                    for (i, v) in part.iter_mut().enumerate() {
                        f((base + i, v));
                    }
                });
            }
        });
    }
}

/// Extension trait mirroring `rayon::prelude::IntoParallelRefMutIterator`
/// for slices and vectors.
pub trait IntoParIterMut {
    type Item;
    fn par_iter_mut(&mut self) -> ParIterMut<'_, Self::Item>;
}

impl<T: Send> IntoParIterMut for [T] {
    type Item = T;
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { slice: self }
    }
}

impl<T: Send> IntoParIterMut for Vec<T> {
    type Item = T;
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { slice: self }
    }
}

pub mod prelude {
    pub use super::IntoParIterMut;
}

/// Default worker count: one per available core.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

/// A scoped-spawn helper mirroring `rayon::scope`'s shape: the closure
/// receives a handle on which work can be spawned, and `scope` does not
/// return until every spawned task has finished. Implemented directly on
/// `std::thread::scope`, so spawned closures may borrow from the caller.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> R,
{
    std::thread::scope(f)
}

/// Chunked, order-preserving parallel map over *owned* work items.
///
/// The input is split into at most `max_threads` contiguous chunks, one
/// scoped thread runs `f` over each chunk, and the per-chunk outputs are
/// concatenated back in chunk order — so the result vector is exactly
/// `items.into_iter().map(f).collect()` regardless of thread count or
/// scheduling. This is the primitive the simulated-IPU parallel executor
/// builds its deterministic merge on: hand each worker an owned, disjoint
/// slice of work and rely on positional (not completion-order) reassembly.
///
/// Degrades to a plain serial map when `max_threads <= 1` or there are
/// fewer than two items.
pub fn par_chunks_map<T, U, F>(items: Vec<T>, max_threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = max_threads.min(n).max(1);
    if threads <= 1 || n < 2 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let f = &f;
    // Move items into per-chunk vectors so each worker owns its inputs.
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let part: Vec<T> = it.by_ref().take(chunk).collect();
        if part.is_empty() {
            break;
        }
        chunks.push(part);
    }
    let mut out: Vec<Vec<U>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|part| s.spawn(move || part.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        handles.into_iter().map(|h| h.join().expect("par_chunks_map worker panicked")).collect()
    });
    let mut flat = Vec::with_capacity(n);
    for part in out.drain(..) {
        flat.extend(part);
    }
    flat
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_for_each_visits_every_index_once() {
        let mut v = vec![0usize; 10_000];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i * 3);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * 3);
        }
    }

    #[test]
    fn empty_slice_ok() {
        let mut v: Vec<u8> = Vec::new();
        v.par_iter_mut().enumerate().for_each(|(_, _)| unreachable!());
    }

    #[test]
    fn plain_for_each_works() {
        let mut v = vec![1i64; 257];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    fn par_chunks_map_preserves_input_order() {
        for threads in [0usize, 1, 2, 3, 7, 64] {
            let items: Vec<usize> = (0..101).collect();
            let out = super::par_chunks_map(items, threads, |i| i * 2 + 1);
            assert_eq!(out, (0..101).map(|i| i * 2 + 1).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(super::par_chunks_map(empty, 8, |x| x).is_empty());
        assert_eq!(super::par_chunks_map(vec![41u32], 8, |x| x + 1), vec![42]);
    }

    #[test]
    fn scope_joins_all_spawned_work() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }
}
