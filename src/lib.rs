//! # graphene
//!
//! Facade crate for the `graphene-rs` workspace — a from-scratch Rust
//! reproduction of *"Accelerating Sparse Linear Solvers on Intelligence
//! Processing Units"* (IPPS 2025).
//!
//! The workspace layers, bottom-up:
//!
//! * [`twofloat`] — double-word arithmetic (Joldes et al. / Lange–Rump) and
//!   software-emulated double precision.
//! * [`ipu_sim`] — a deterministic, cycle-modelled simulator of the
//!   GraphCore Mk2 IPU: tiles, SRAM, six worker threads per tile, BSP
//!   supersteps, and the all-to-all exchange fabric.
//! * [`graph`] — the Poplar-style programming model: tensors with tile
//!   mappings, compute sets, program steps, codelets (a typed stack VM) and
//!   the graph compiler/engine.
//! * [`dsl`] — CodeDSL (tile-local codelet description) and TensorDSL
//!   (global tensor expressions with lazy, fusing materialisation and a
//!   control-flow stack).
//! * [`sparse`] — host-side sparse matrix formats, generators, MatrixMarket
//!   IO, row-wise partitioning, halo-region reordering and level-set
//!   scheduling.
//! * [`core`](graphene_core) — the paper's contribution proper: distributed
//!   matrices/vectors on tiles, SpMV with blockwise halo exchange, the
//!   solver & preconditioner suite (PBiCGStab, Gauss-Seidel, ILU(0), DILU,
//!   Jacobi), mixed-precision iterative refinement and JSON solver
//!   configuration.
//! * [`baselines`] — the CPU (native Rust, sequential + rayon) and GPU
//!   (roofline model) comparators used by the evaluation benches.
//! * [`backend`] — the device/backend abstraction unifying the simulator
//!   and the baselines behind one `Backend` trait and the
//!   `GRAPHENE_BACKEND` registry grammar (see
//!   [`graphene_core::backends`] for the registry itself).
//! * [`serve`] — the fault-tolerant multi-tenant solve service: bounded
//!   per-tenant queues with deficit-round-robin fairness, per-job
//!   deadlines, seeded retry backoff, poison-job quarantine,
//!   worker-crash containment and chaos-storm testing with an
//!   independent SDC judge.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every table and figure.

pub use backend;
pub use baselines;
pub use dsl;
pub use graph;
pub use graphene_core;
pub use ipu_sim;
pub use profile;
pub use serve;
pub use sparse;
pub use twofloat;

/// Convenience prelude re-exporting the types most programs need.
pub mod prelude {
    pub use dsl::prelude::*;
    pub use graphene_core::prelude::*;
    pub use ipu_sim::IpuModel;
    pub use sparse::{CsrMatrix, ModifiedCsr};
    pub use twofloat::{SoftDouble, TwoF32, TwoFloat};
}
