//! Cross-backend integration tests (tier-1).
//!
//! The backend abstraction's contract, end to end:
//!
//! * the cross-backend differential sweep — the Krylov subset of the
//!   verification suite on both the IPU simulator and the CPU baseline,
//!   judged against the oracle and against each other;
//! * `SolveOptions::backend = ipu-sim:<variant>` is bit- and
//!   cycle-identical to pinning the corresponding executor directly;
//! * the registry refuses unknown names with `SolveError::Config` and
//!   capability mismatches with `SolveError::Backend` — typed errors,
//!   never panics;
//! * external-backend reports are schema-v3 (`backend` section) and
//!   round-trip through the JSON wire format.

use std::rc::Rc;

use graphene::backend::{BackendSpec, IpuVariant};
use graphene::graphene_core::config::SolverConfig;
use graphene::graphene_core::resilience::SolveError;
use graphene::graphene_core::resolve_backend;
use graphene::graphene_core::runner::{solve, SolveOptions};
use graphene::ipu_sim::fault::FaultPlan;
use graphene::prelude::IpuModel;
use graphene::profile::SolveReport;
use graphene::sparse::gen::{poisson_2d_5pt, rhs_for_ones};
use verify::cross_backend::{check_cross_backend, cpu_supported_cases};

use graphene::graph::ExecutorKind;

fn sim_opts() -> SolveOptions {
    SolveOptions {
        model: IpuModel::tiny(4),
        tiles: Some(4),
        record_history: false,
        ..SolveOptions::default()
    }
}

fn krylov() -> SolverConfig {
    SolverConfig::BiCgStab { max_iters: 120, rel_tol: 1e-6, precond: None }
}

// ---- the cross-backend differential sweep (satellite 5 / CI leg) ------

#[test]
fn cross_backend_differential_suite() {
    let outcomes = check_cross_backend(&cpu_supported_cases());
    // Two backend rows per (case, family); at least 3 families per case.
    assert!(outcomes.len() >= cpu_supported_cases().len() * 3 * 2);
    assert!(outcomes.iter().any(|o| o.backend == "cpu"));
    assert!(outcomes.iter().any(|o| o.backend == "ipu-sim:seq"));
}

// ---- backend selection equivalence (tentpole acceptance) --------------

#[test]
fn backend_pinning_matches_executor_pinning() {
    let a = Rc::new(poisson_2d_5pt(10, 10, 1.0));
    let b = rhs_for_ones(&a);
    let cfg = krylov();
    for (variant, kind) in [
        (IpuVariant::Seq, ExecutorKind::Sequential),
        (IpuVariant::Par, ExecutorKind::Parallel),
        (IpuVariant::Native, ExecutorKind::Native),
    ] {
        let via_backend = solve(
            Rc::clone(&a),
            &b,
            &cfg,
            &SolveOptions { backend: Some(BackendSpec::IpuSim(variant)), ..sim_opts() },
        )
        .unwrap();
        let via_executor =
            solve(Rc::clone(&a), &b, &cfg, &SolveOptions { executor: Some(kind), ..sim_opts() })
                .unwrap();
        assert_eq!(via_backend.x, via_executor.x, "{variant:?}: bits must match");
        assert_eq!(
            via_backend.stats.device_cycles(),
            via_executor.stats.device_cycles(),
            "{variant:?}: cycles must match"
        );
        assert_eq!(via_backend.report.executor, kind.name());
        let info = via_backend.report.backend.as_ref().expect("v3 report names its backend");
        assert_eq!(info.family, "ipu-sim");
        assert_eq!(info.timing, "cycle-model");
        assert_eq!(info.name, BackendSpec::IpuSim(variant).name());
    }
}

#[test]
fn conflicting_backend_and_executor_pins_are_config_errors() {
    let a = Rc::new(poisson_2d_5pt(6, 6, 1.0));
    let b = rhs_for_ones(&a);
    let opts = SolveOptions {
        backend: Some(BackendSpec::IpuSim(IpuVariant::Seq)),
        executor: Some(ExecutorKind::Parallel),
        ..sim_opts()
    };
    match solve(a, &b, &krylov(), &opts) {
        Err(SolveError::Config(msg)) => {
            assert!(msg.contains("ipu-sim:seq"), "{msg}");
            assert!(msg.contains("parallel"), "{msg}");
        }
        other => panic!("expected Config error, got {other:?}"),
    }
}

// ---- the registry: typed refusals, never panics (satellite 3) ---------

#[test]
fn unknown_backend_is_a_config_error() {
    match resolve_backend("quantum-annealer", &sim_opts()) {
        Err(SolveError::Config(msg)) => {
            assert!(msg.contains("unknown backend"), "{msg}");
            assert!(msg.contains("gpu-model") && msg.contains("ipu-sim:seq"), "{msg}");
        }
        Ok(_) => panic!("unknown backend must not resolve"),
        Err(other) => panic!("expected Config, got {other}"),
    }
}

#[test]
fn faults_on_gpu_model_are_a_typed_capability_error() {
    let a = Rc::new(poisson_2d_5pt(8, 8, 1.0));
    let b = rhs_for_ones(&a);
    let opts = SolveOptions {
        backend: Some(BackendSpec::GpuModel),
        faults: Some(FaultPlan::parse("flip@s40.t1:w3.b30").unwrap()),
        ..sim_opts()
    };
    match solve(a, &b, &krylov(), &opts) {
        Err(SolveError::Backend { backend, reason }) => {
            assert_eq!(backend, "gpu-model");
            assert!(reason.contains("fault injection"), "{reason}");
        }
        other => panic!("expected Backend error, got {other:?}"),
    }
}

#[test]
fn tuning_on_cpu_backend_is_a_typed_capability_error() {
    let a = Rc::new(poisson_2d_5pt(8, 8, 1.0));
    let b = rhs_for_ones(&a);
    let opts = SolveOptions {
        backend: Some(BackendSpec::Cpu { parallel: false }),
        tune: Some(true),
        ..sim_opts()
    };
    match solve(a, &b, &krylov(), &opts) {
        Err(SolveError::Backend { backend, reason }) => {
            assert_eq!(backend, "cpu");
            assert!(reason.contains("auto-tuning"), "{reason}");
        }
        other => panic!("expected Backend error, got {other:?}"),
    }
}

#[test]
fn unsupported_solver_on_cpu_backend_is_a_typed_error() {
    let a = Rc::new(poisson_2d_5pt(8, 8, 1.0));
    let b = rhs_for_ones(&a);
    let cfg = SolverConfig::Jacobi { sweeps: 30, omega: 0.8 };
    let opts = SolveOptions { backend: Some(BackendSpec::Cpu { parallel: false }), ..sim_opts() };
    match solve(a, &b, &cfg, &opts) {
        Err(SolveError::Backend { backend, reason }) => {
            assert_eq!(backend, "cpu");
            assert!(reason.contains("jacobi"), "{reason}");
        }
        other => panic!("expected Backend error, got {other:?}"),
    }
}

// ---- external backends through the runner (satellite 2) ---------------

#[test]
fn cpu_backend_solve_reports_wall_clock_accounting() {
    let a = Rc::new(poisson_2d_5pt(10, 10, 1.0));
    let b = rhs_for_ones(&a);
    let opts = SolveOptions {
        backend: Some(BackendSpec::Cpu { parallel: false }),
        record_history: true,
        ..sim_opts()
    };
    let res = solve(Rc::clone(&a), &b, &krylov(), &opts).unwrap();
    assert!(res.residual < 1e-6 * 100.0, "residual {}", res.residual);
    assert_eq!(res.stats.device_cycles(), 0, "no simulated device ran");
    assert!(res.seconds > 0.0, "wall-clock seconds must be positive");
    assert!(!res.history.is_empty());
    let info = res.report.backend.as_ref().expect("backend section present");
    assert_eq!(info.name, "cpu");
    assert_eq!(info.family, "cpu");
    assert_eq!(info.timing, "wall-clock");
    // `summarize`-compatible accounting: n/nnz/iterations/seconds filled.
    assert_eq!(res.report.n, a.nrows);
    assert_eq!(res.report.nnz, a.nnz());
    assert_eq!(res.report.iterations, res.iterations);
    assert!(res.report.seconds > 0.0);
    assert!(res.report.host_seconds >= res.report.seconds);

    // The wire format round-trips with the backend section intact.
    let parsed = SolveReport::from_value(&res.report.to_value()).unwrap();
    let back = parsed.backend.expect("backend survives the round-trip");
    assert_eq!(back.timing, "wall-clock");
}

#[test]
fn gpu_model_backend_reports_modelled_seconds() {
    let a = Rc::new(poisson_2d_5pt(10, 10, 1.0));
    let b = rhs_for_ones(&a);
    let opts = SolveOptions { backend: Some(BackendSpec::GpuModel), ..sim_opts() };
    let res = solve(a, &b, &krylov(), &opts).unwrap();
    assert!(res.residual < 1e-6 * 100.0, "residual {}", res.residual);
    assert_eq!(res.stats.device_cycles(), 0);
    assert!(res.seconds > 0.0, "modelled seconds must be positive");
    let info = res.report.backend.as_ref().expect("backend section present");
    assert_eq!(info.name, "gpu-model");
    assert_eq!(info.timing, "roofline-model");
}

#[test]
fn cpu_parallel_backend_is_bit_identical_to_sequential() {
    let a = Rc::new(poisson_2d_5pt(12, 12, 1.0));
    let b = rhs_for_ones(&a);
    let run = |parallel| {
        let opts = SolveOptions { backend: Some(BackendSpec::Cpu { parallel }), ..sim_opts() };
        solve(Rc::clone(&a), &b, &krylov(), &opts).unwrap()
    };
    let seq = run(false);
    let par = run(true);
    assert_eq!(seq.x, par.x);
    assert_eq!(seq.iterations, par.iterations);
    assert_eq!(seq.report.backend.as_ref().unwrap().name, "cpu");
    assert_eq!(par.report.backend.as_ref().unwrap().name, "cpu:par");
}
