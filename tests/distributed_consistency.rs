//! Distributed-vs-host consistency: every device kernel must compute the
//! same values as a straightforward host implementation (up to working
//! precision), for a variety of matrices and decompositions.

use std::rc::Rc;

use graphene::dsl::prelude::*;
use graphene::graphene_core::dist::DistSystem;
use graphene::graphene_core::solvers::{zero, GaussSeidel, Ilu0, Jacobi, Solver};
use graphene::sparse::formats::CsrMatrix;
use graphene::sparse::gen;
use graphene::sparse::partition::Partition;

fn build<'a>(a: &Rc<CsrMatrix>, tiles: usize) -> (DslCtx, DistSystem, TensorRef, TensorRef) {
    let part = Partition::balanced_by_nnz(a, tiles);
    let mut ctx = DslCtx::new(IpuModel::tiny(tiles));
    let sys = DistSystem::build(&mut ctx, a.clone(), part);
    let b = sys.new_vector(&mut ctx, "b", DType::F32);
    let x = sys.new_vector(&mut ctx, "x", DType::F32);
    (ctx, sys, b, x)
}

#[test]
fn spmv_matches_host_across_decompositions() {
    let matrices: Vec<CsrMatrix> = vec![
        gen::poisson_2d_5pt(9, 7, 1.0),
        gen::poisson_3d_7pt(5, 4, 6),
        gen::random_spd(60, 9, 17),
        gen::tridiagonal(41),
    ];
    for a in matrices {
        let a = Rc::new(a);
        let xs = gen::random_vector(a.nrows, 23);
        let want = a.spmv_alloc(&xs);
        for tiles in [1usize, 3, 7] {
            let (mut ctx, sys, _b, x) = build(&a, tiles);
            let y = sys.new_vector(&mut ctx, "y", DType::F32);
            sys.spmv(&mut ctx, y, x);
            let mut e = ctx.build_engine().unwrap();
            sys.upload(&mut e);
            e.write_tensor(x.id, &sys.to_device_order(&xs));
            e.run();
            let got = sys.from_device_order(&e.read_tensor(y.id));
            let scale: f64 = want.iter().map(|v| v.abs()).fold(1.0, f64::max);
            for (g, w) in got.iter().zip(&want) {
                assert!(
                    (g - w).abs() / scale < 1e-5,
                    "{} rows, {tiles} tiles: {g} vs {w}",
                    a.nrows
                );
            }
        }
    }
}

/// Host Gauss-Seidel restricted to tile-local updates (the block-hybrid
/// sweep the device performs): within the sweep, off-tile values stay at
/// their pre-sweep snapshot.
fn host_block_gs(a: &CsrMatrix, part: &Partition, b: &[f64], x: &mut Vec<f64>) {
    let snapshot = x.clone();
    // The device sweeps each tile's rows in its local (reordered) order;
    // level-set order is equivalent to any topological order of the local
    // dependency DAG, which the local row order is NOT in general — but
    // the fixed point is the same and one sweep differs only via
    // local-vs-global ordering. To compare exactly, mirror the device's
    // local ordering.
    let halo = graphene::sparse::halo::HaloDecomposition::build(a, part);
    for (t, layout) in halo.layouts.iter().enumerate() {
        let _ = t;
        // Process in level order of the local matrix, exactly like the
        // device.
        let lm = &halo.local_matrices(a)[t];
        let levels = graphene::sparse::levelset::LevelSets::analyze(
            &lm.a,
            graphene::sparse::levelset::Sweep::Forward,
        );
        for level in &levels.levels {
            for &li in level {
                let row = layout.owned[li];
                let (cols, vals) = a.row(row);
                let mut acc = b[row];
                let mut diag = 0.0;
                for (c, v) in cols.iter().zip(vals) {
                    let j = *c as usize;
                    if j == row {
                        diag = *v;
                    } else if part.owner_of(j) == t {
                        acc -= v * x[j]; // local: possibly updated
                    } else {
                        acc -= v * snapshot[j]; // halo: pre-sweep value
                    }
                }
                x[row] = acc / diag;
            }
        }
    }
}

#[test]
fn gauss_seidel_sweep_matches_host_reference() {
    let a = Rc::new(gen::poisson_2d_5pt(8, 8, 1.0));
    let part = Partition::balanced_by_nnz(&a, 3);
    let bs = gen::random_vector(a.nrows, 2);
    let x0 = gen::random_vector(a.nrows, 4);

    let mut ctx = DslCtx::new(IpuModel::tiny(3));
    let sys = DistSystem::build(&mut ctx, a.clone(), part.clone());
    let b = sys.new_vector(&mut ctx, "b", DType::F32);
    let x = sys.new_vector(&mut ctx, "x", DType::F32);
    let mut gs = GaussSeidel::new(1, false);
    gs.setup(&mut ctx, &sys);
    gs.solve(&mut ctx, &sys, b, x);
    let mut e = ctx.build_engine().unwrap();
    sys.upload(&mut e);
    e.write_tensor(b.id, &sys.to_device_order(&bs));
    e.write_tensor(x.id, &sys.to_device_order(&x0));
    e.run();
    let got = sys.from_device_order(&e.read_tensor(x.id));

    // Host reference in f64 with the same blocking: f32 rounding bounds
    // the difference.
    let mut want = x0.clone();
    host_block_gs(&a, &part, &bs, &mut want);
    for (g, w) in got.iter().zip(&want) {
        assert!((g - w).abs() < 1e-4, "{g} vs {w}");
    }
}

#[test]
fn gs_sweeps_reduce_residual_monotonically() {
    let a = Rc::new(gen::poisson_2d_5pt(10, 10, 1.0));
    let bs = gen::rhs_for_ones(&a);
    let mut prev = f64::INFINITY;
    for sweeps in [1u32, 4, 16] {
        let (mut ctx, sys, b, x) = build(&a, 4);
        let mut gs = GaussSeidel::new(sweeps, false);
        gs.setup(&mut ctx, &sys);
        gs.solve(&mut ctx, &sys, b, x);
        let mut e = ctx.build_engine().unwrap();
        sys.upload(&mut e);
        e.write_tensor(b.id, &sys.to_device_order(&bs));
        e.run();
        let got = sys.from_device_order(&e.read_tensor(x.id));
        let r: f64 = a
            .spmv_alloc(&got)
            .iter()
            .zip(&bs)
            .map(|(ax, b)| (ax - b) * (ax - b))
            .sum::<f64>()
            .sqrt();
        assert!(r < prev, "sweeps {sweeps}: {r} !< {prev}");
        prev = r;
    }
}

#[test]
fn jacobi_matches_host_reference() {
    let a = Rc::new(gen::random_spd(40, 5, 99));
    let bs = gen::random_vector(40, 1);
    let (mut ctx, sys, b, x) = build(&a, 2);
    let mut j = Jacobi::new(3, 0.8);
    j.setup(&mut ctx, &sys);
    zero(&mut ctx, x);
    j.solve(&mut ctx, &sys, b, x);
    let mut e = ctx.build_engine().unwrap();
    sys.upload(&mut e);
    e.write_tensor(b.id, &sys.to_device_order(&bs));
    e.run();
    let got = sys.from_device_order(&e.read_tensor(x.id));

    // Host: x <- x + w D^-1 (b - A x), 3 times from zero.
    let diag = a.diagonal();
    let mut want = vec![0.0; 40];
    for _ in 0..3 {
        let ax = a.spmv_alloc(&want);
        for i in 0..40 {
            want[i] += 0.8 * (bs[i] - ax[i]) / diag[i];
        }
    }
    for (g, w) in got.iter().zip(&want) {
        assert!((g - w).abs() < 1e-4, "{g} vs {w}");
    }
}

#[test]
fn ilu_preconditioner_is_linear_operator() {
    // M^-1(alpha r1 + r2) == alpha M^-1 r1 + M^-1 r2 (up to f32): the
    // breakdown-investigation invariant — the preconditioner must be a
    // fixed linear operator.
    let a = Rc::new(gen::poisson_2d_5pt(7, 7, 1.0));
    let apply = |rhs: &[f64]| -> Vec<f64> {
        let (mut ctx, sys, b, x) = build(&a, 3);
        let mut ilu = Ilu0::new();
        ilu.setup(&mut ctx, &sys);
        zero(&mut ctx, x);
        ilu.solve(&mut ctx, &sys, b, x);
        let mut e = ctx.build_engine().unwrap();
        sys.upload(&mut e);
        e.write_tensor(b.id, &sys.to_device_order(rhs));
        e.run();
        sys.from_device_order(&e.read_tensor(x.id))
    };
    let r1 = gen::random_vector(49, 6);
    let r2 = gen::random_vector(49, 7);
    let combo: Vec<f64> = r1.iter().zip(&r2).map(|(a, b)| 2.5 * a + b).collect();
    let m1 = apply(&r1);
    let m2 = apply(&r2);
    let mc = apply(&combo);
    for i in 0..49 {
        let lin = 2.5 * m1[i] + m2[i];
        assert!((mc[i] - lin).abs() < 1e-3, "row {i}: {} vs {lin}", mc[i]);
    }
}

#[test]
fn dilu_matches_host_reference_single_tile() {
    // DILU on one tile vs a host implementation of
    // M = (D+L) D⁻¹ (D+U) with d_i = a_ii − Σ_{k<i} a_ik a_ki / d_k.
    let a = Rc::new(gen::random_spd(30, 6, 55));
    let rhs = gen::random_vector(30, 3);
    let (mut ctx, sys, b, x) = build(&a, 1);
    let mut dilu = graphene::graphene_core::solvers::Dilu::new();
    dilu.setup(&mut ctx, &sys);
    zero(&mut ctx, x);
    dilu.solve(&mut ctx, &sys, b, x);
    let mut e = ctx.build_engine().unwrap();
    sys.upload(&mut e);
    e.write_tensor(b.id, &sys.to_device_order(&rhs));
    e.run();
    let got = sys.from_device_order(&e.read_tensor(x.id));

    // Host reference.
    let n = 30;
    let mut d = a.diagonal();
    for i in 0..n {
        let (cols, vals) = a.row(i);
        for (c, v) in cols.iter().zip(vals) {
            let k = *c as usize;
            if k < i {
                let aki = a.get(k, i);
                d[i] -= v * aki / d[k];
            }
        }
    }
    // Forward: w_i = (b_i - Σ_{j<i} a_ij w_j) / d_i.
    let mut w = vec![0.0; n];
    for i in 0..n {
        let (cols, vals) = a.row(i);
        let mut acc = rhs[i];
        for (c, v) in cols.iter().zip(vals) {
            let j = *c as usize;
            if j < i {
                acc -= v * w[j];
            }
        }
        w[i] = acc / d[i];
    }
    // Backward: z_i = w_i - (Σ_{j>i} a_ij z_j) / d_i.
    let mut z = w.clone();
    for i in (0..n).rev() {
        let (cols, vals) = a.row(i);
        let mut acc = 0.0;
        for (c, v) in cols.iter().zip(vals) {
            let j = *c as usize;
            if j > i {
                acc += v * z[j];
            }
        }
        z[i] = w[i] - acc / d[i];
    }
    for (g, want) in got.iter().zip(&z) {
        assert!((g - want).abs() < 1e-3 * (1.0 + want.abs()), "{g} vs {want}");
    }
}

#[test]
fn symmetric_gs_at_least_as_good_per_sweep() {
    let a = Rc::new(gen::poisson_2d_5pt(9, 9, 1.0));
    let bs = gen::rhs_for_ones(&a);
    let residual_after = |symmetric: bool| -> f64 {
        let (mut ctx, sys, b, x) = build(&a, 2);
        let mut gs = GaussSeidel::new(2, symmetric);
        gs.setup(&mut ctx, &sys);
        gs.solve(&mut ctx, &sys, b, x);
        let mut e = ctx.build_engine().unwrap();
        sys.upload(&mut e);
        e.write_tensor(b.id, &sys.to_device_order(&bs));
        e.run();
        let got = sys.from_device_order(&e.read_tensor(x.id));
        a.spmv_alloc(&got).iter().zip(&bs).map(|(ax, b)| (ax - b) * (ax - b)).sum::<f64>().sqrt()
    };
    let fwd = residual_after(false);
    let sym = residual_after(true);
    assert!(sym < fwd, "symmetric {sym} vs forward {fwd}");
}

#[test]
fn halo_exchange_refreshes_all_copies() {
    let a = Rc::new(gen::poisson_3d_7pt(6, 6, 6));
    let part = Partition::grid_3d(gen::Grid3 { nx: 6, ny: 6, nz: 6 }, 2, 2, 2);
    let mut ctx = DslCtx::new(IpuModel::tiny(8));
    let sys = DistSystem::build(&mut ctx, a.clone(), part);
    let x = sys.new_vector(&mut ctx, "x", DType::F32);
    sys.halo_exchange(&mut ctx, x);
    let mut e = ctx.build_engine().unwrap();
    sys.upload(&mut e);
    // Owned values = global index; halo slots poisoned.
    let xs: Vec<f64> = (0..a.nrows).map(|i| i as f64).collect();
    let mut dev = sys.to_device_order(&xs);
    for vc in &sys.vec_chunks {
        for k in vc.owned..vc.total {
            dev[vc.start + k] = -1.0;
        }
    }
    e.write_tensor(x.id, &dev);
    e.run();
    let after = e.read_tensor(x.id);
    for (t, vc) in sys.vec_chunks.iter().enumerate() {
        for (k, &row) in sys.halo.layouts[t].halo.iter().enumerate() {
            assert_eq!(after[vc.start + vc.owned + k], row as f64, "tile {t} halo slot {k}");
        }
    }
}
