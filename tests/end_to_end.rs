//! End-to-end integration tests: the full pipeline from host matrix to
//! device solution, across solver configurations, precisions, matrices
//! and machine sizes — and cross-checked against the native f64 CPU
//! baseline.

use std::rc::Rc;

use graphene::baselines::cpu::CpuSolver;
use graphene::graphene_core::config::SolverConfig;
use graphene::graphene_core::runner::{solve_or_panic, SolveOptions};
use graphene::graphene_core::solvers::ExtendedPrecision;
use graphene::ipu_sim::IpuModel;
use graphene::sparse::gen;

fn opts(tiles: usize) -> SolveOptions {
    SolveOptions { model: IpuModel::tiny(tiles), tiles: Some(tiles), ..SolveOptions::default() }
}

fn bicgstab_ilu(max_iters: u32, tol: f32) -> SolverConfig {
    SolverConfig::BiCgStab {
        max_iters,
        rel_tol: tol,
        precond: Some(Box::new(SolverConfig::Ilu0 {})),
    }
}

#[test]
fn device_solution_matches_cpu_baseline() {
    let a = Rc::new(gen::poisson_2d_5pt(14, 14, 1.0));
    let b = gen::random_vector(a.nrows, 3);
    let dev = solve_or_panic(a.clone(), &b, &bicgstab_ilu(300, 1e-7), &opts(4));
    let mut x_cpu = vec![0.0; a.nrows];
    CpuSolver::new(1000, 1e-12, true).solve(&a, &b, &mut x_cpu);
    // Both solve (nearly) the same system; agreement limited by the f32
    // device data.
    let num: f64 = dev.x.iter().zip(&x_cpu).map(|(a, b)| (a - b) * (a - b)).sum();
    let den: f64 = x_cpu.iter().map(|v| v * v).sum();
    assert!((num / den).sqrt() < 1e-4, "device vs cpu mismatch {:.3e}", (num / den).sqrt());
}

#[test]
fn all_suitesparse_analogues_solve() {
    for name in ["G3_circuit", "af_shell7", "Geo_1438", "Hook_1498"] {
        let a = Rc::new(gen::suitesparse::by_name(name, 0.001));
        let b = gen::random_vector(a.nrows, 5);
        let res = solve_or_panic(a, &b, &bicgstab_ilu(500, 1e-5), &opts(8));
        assert!(res.residual < 1e-4, "{name}: residual {:.3e}", res.residual);
    }
}

#[test]
fn solution_independent_of_tile_count() {
    // The result must not depend on how many tiles the system spans
    // (up to working precision and preconditioner locality).
    let a = Rc::new(gen::poisson_2d_5pt(12, 12, 1.0));
    let b = gen::rhs_for_ones(&a);
    for tiles in [1usize, 2, 5, 16] {
        let res = solve_or_panic(a.clone(), &b, &bicgstab_ilu(400, 1e-6), &opts(tiles));
        assert!(res.residual < 2e-6, "{tiles} tiles: residual {:.3e}", res.residual);
        for v in &res.x {
            assert!((v - 1.0).abs() < 1e-3, "{tiles} tiles: x = {v}");
        }
    }
}

#[test]
fn device_cycles_are_deterministic() {
    let a = Rc::new(gen::poisson_2d_5pt(10, 10, 1.0));
    let b = gen::rhs_for_ones(&a);
    let cfg = bicgstab_ilu(50, 1e-6);
    let r1 = solve_or_panic(a.clone(), &b, &cfg, &opts(4));
    let r2 = solve_or_panic(a, &b, &cfg, &opts(4));
    assert_eq!(r1.stats.device_cycles(), r2.stats.device_cycles());
    assert_eq!(r1.x, r2.x);
    assert_eq!(r1.iterations, r2.iterations);
}

#[test]
fn mpir_precisions_order_correctly() {
    // Floors must order: working >= double-word >= emulated f64.
    let a = Rc::new(gen::poisson_2d_5pt(16, 16, 1.0));
    let b = gen::random_vector(a.nrows, 11);
    let mut floors = Vec::new();
    for precision in
        [ExtendedPrecision::Working, ExtendedPrecision::DoubleWord, ExtendedPrecision::EmulatedF64]
    {
        let cfg = SolverConfig::Mpir {
            inner: Box::new(bicgstab_ilu(50, 0.0)),
            precision,
            max_outer: 5,
            rel_tol: 1e-18,
        };
        let res = solve_or_panic(a.clone(), &b, &cfg, &opts(4));
        floors.push(res.residual);
    }
    assert!(floors[1] < floors[0] * 1e-3, "dw {} vs working {}", floors[1], floors[0]);
    assert!(floors[2] < floors[1] * 2.0, "f64 {} vs dw {}", floors[2], floors[1]);
    assert!(floors[1] < 1e-10);
}

#[test]
fn deep_nesting_works() {
    // MPIR { BiCGStab { GaussSeidel } } — three levels.
    let a = Rc::new(gen::poisson_2d_5pt(10, 10, 1.0));
    let b = gen::rhs_for_ones(&a);
    let cfg = SolverConfig::Mpir {
        inner: Box::new(SolverConfig::BiCgStab {
            max_iters: 80,
            rel_tol: 0.0,
            precond: Some(Box::new(SolverConfig::GaussSeidel {
                sweeps: 2,
                symmetric: false,
                rel_tol: 0.0,
            })),
        }),
        precision: ExtendedPrecision::DoubleWord,
        max_outer: 4,
        rel_tol: 1e-10,
    };
    assert_eq!(cfg.depth(), 3);
    let res = solve_or_panic(a, &b, &cfg, &opts(4));
    assert!(res.residual < 1e-9, "residual {:.3e}", res.residual);
}

#[test]
fn solver_history_tracks_monitor_and_device_time_positive() {
    let a = Rc::new(gen::poisson_2d_5pt(10, 10, 1.0));
    let b = gen::rhs_for_ones(&a);
    let res = solve_or_panic(a, &b, &bicgstab_ilu(30, 1e-6), &opts(2));
    assert_eq!(res.history.len(), res.iterations);
    assert!(res.seconds > 0.0);
    // History iterations are 1..=n, strictly increasing.
    for (k, (it, _)) in res.history.iter().enumerate() {
        assert_eq!(*it, k + 1);
    }
}

#[test]
fn asymmetric_system_solves() {
    // BiCGStab's raison d'être: nonsymmetric systems. A 1D
    // convection-diffusion matrix (upwind, diagonally dominant).
    let n = 80;
    let mut coo = graphene::sparse::formats::CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 3.0);
        if i > 0 {
            coo.push(i, i - 1, -2.0); // convection: stronger lower band
        }
        if i + 1 < n {
            coo.push(i, i + 1, -0.5);
        }
    }
    let a = Rc::new(coo.to_csr());
    assert!(!a.is_symmetric(1e-12));
    let b = gen::random_vector(n, 1);
    let res = solve_or_panic(a.clone(), &b, &bicgstab_ilu(200, 1e-6), &opts(3));
    assert!(res.residual < 2e-6, "residual {:.3e}", res.residual);
}

#[test]
fn chebyshev_preconditioner_accelerates_cg() {
    let a = Rc::new(gen::poisson_2d_5pt(16, 16, 1.0));
    let b = gen::rhs_for_ones(&a);
    let plain = SolverConfig::Cg { max_iters: 400, rel_tol: 1e-6, precond: None };
    let cheb = SolverConfig::Cg {
        max_iters: 400,
        rel_tol: 1e-6,
        precond: Some(Box::new(SolverConfig::Chebyshev { degree: 4, eig_ratio: 30.0 })),
    };
    let r1 = solve_or_panic(a.clone(), &b, &plain, &opts(4));
    let r2 = solve_or_panic(a, &b, &cheb, &opts(4));
    assert!(r2.residual < 2e-6, "residual {:.3e}", r2.residual);
    assert!(r2.iterations < r1.iterations, "cheb {} vs plain {}", r2.iterations, r1.iterations);
}

#[test]
fn rcm_reordered_system_solves_identically() {
    use graphene::sparse::reorder::rcm;
    let a0 = gen::random_spd(60, 6, 31);
    let perm = rcm(&a0);
    let a = Rc::new(a0.permute_symmetric(&perm));
    let b0 = gen::random_vector(60, 2);
    let b: Vec<f64> = perm.iter().map(|&old| b0[old]).collect();
    let res = solve_or_panic(a, &b, &bicgstab_ilu(200, 1e-6), &opts(3));
    assert!(res.residual < 2e-6, "residual {:.3e}", res.residual);
    // Un-permute and check against the original system.
    let mut x0 = vec![0.0; 60];
    for (new, &old) in perm.iter().enumerate() {
        x0[old] = res.x[new];
    }
    let ax = a0.spmv_alloc(&x0);
    let r: f64 = ax.iter().zip(&b0).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
    let bn: f64 = b0.iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(r / bn < 1e-5, "unpermuted residual {}", r / bn);
}

#[test]
fn geometric_partition_option_is_honoured() {
    use graphene::sparse::gen::Grid3;
    use graphene::sparse::partition::Partition;
    let a = Rc::new(gen::poisson_3d_7pt(8, 8, 8));
    let b = gen::rhs_for_ones(&a);
    let part = Partition::grid_3d(Grid3 { nx: 8, ny: 8, nz: 8 }, 2, 2, 2);
    let o =
        SolveOptions { model: IpuModel::tiny(8), partition: Some(part), ..SolveOptions::default() };
    let res = solve_or_panic(a, &b, &bicgstab_ilu(300, 1e-6), &o);
    assert!(res.residual < 2e-6);
}
