//! Property-based tests on the core data structures and numerical
//! invariants, spanning crates.

use proptest::prelude::*;

use graphene::sparse::formats::{CooMatrix, CsrMatrix};
use graphene::sparse::halo::HaloDecomposition;
use graphene::sparse::levelset::{LevelSets, Sweep};
use graphene::sparse::partition::Partition;
use graphene::twofloat::{joldes, lange_rump, SoftDouble, TwoF32, TwoFloat};

// ---------------------------------------------------------------------
// twofloat: double-word arithmetic vs f64 reference
// ---------------------------------------------------------------------

fn reasonable_f64() -> impl Strategy<Value = f64> {
    // Well inside f32 range so intermediate products stay finite.
    prop_oneof![-1e12f64..1e12, -1.0f64..1.0, (-1e-12f64..1e-12).prop_map(|v| v + 1e-30),]
}

proptest! {
    #[test]
    fn dw_add_matches_f64(x in reasonable_f64(), y in reasonable_f64()) {
        let a = TwoF32::from_f64(x);
        let b = TwoF32::from_f64(y);
        let want = a.to_f64() + b.to_f64();
        let got = (a + b).to_f64();
        let scale = want.abs().max(a.to_f64().abs()).max(b.to_f64().abs()).max(1e-300);
        // Joldes bound: ~3u^2 relative to the operand scale (catastrophic
        // cancellation reduces relative accuracy of the *result*, not of
        // the representation).
        prop_assert!((got - want).abs() / scale < 1e-12, "{got} vs {want}");
    }

    #[test]
    fn dw_mul_matches_f64(x in reasonable_f64(), y in reasonable_f64()) {
        let a = TwoF32::from_f64(x);
        let b = TwoF32::from_f64(y);
        let want = a.to_f64() * b.to_f64();
        let got = (a * b).to_f64();
        prop_assert!((got - want).abs() <= want.abs() * 1e-12 + 1e-300);
    }

    #[test]
    fn dw_div_matches_f64(x in reasonable_f64(), y in reasonable_f64()) {
        prop_assume!(y.abs() > 1e-6);
        let a = TwoF32::from_f64(x);
        let b = TwoF32::from_f64(y);
        let want = a.to_f64() / b.to_f64();
        let got = (a / b).to_f64();
        prop_assert!((got - want).abs() <= want.abs() * 1e-11 + 1e-300);
    }

    #[test]
    fn dw_results_always_normalised(x in reasonable_f64(), y in reasonable_f64()) {
        let a = TwoF32::from_f64(x);
        let b = TwoF32::from_f64(y);
        for r in [a + b, a - b, a * b] {
            // Normalised pair: hi + lo rounds to hi.
            prop_assert_eq!(r.hi() + r.lo(), r.hi());
        }
    }

    #[test]
    fn lange_rump_faithful_per_op(x in reasonable_f64(), y in reasonable_f64()) {
        let a = TwoF32::from_f64(x);
        let b = TwoF32::from_f64(y);
        let (h, l) = lange_rump::mul_dw_dw(a.hi(), a.lo(), b.hi(), b.lo());
        let want = a.to_f64() * b.to_f64();
        let got = h as f64 + l as f64;
        prop_assert!((got - want).abs() <= want.abs() * 1e-10 + 1e-300);
    }

    #[test]
    fn joldes_mixed_ops_match_full(x in reasonable_f64(), y in -1e6f32..1e6f32) {
        let a = TwoF32::from_f64(x);
        let full = a * TwoFloat::from_f(y);
        let (h, l) = joldes::mul_dw_f(a.hi(), a.lo(), y);
        let mixed = h as f64 + l as f64;
        prop_assert!((mixed - full.to_f64()).abs() <= full.to_f64().abs() * 1e-11 + 1e-300);
    }

    #[test]
    fn softdouble_is_transparent_f64(x in any::<f64>(), y in any::<f64>()) {
        prop_assume!(x.is_finite() && y.is_finite());
        prop_assert_eq!((SoftDouble(x) + SoftDouble(y)).0, x + y);
        prop_assert_eq!((SoftDouble(x) * SoftDouble(y)).0, x * y);
    }
}

// ---------------------------------------------------------------------
// sparse: structural invariants
// ---------------------------------------------------------------------

fn arb_coo(max_n: usize, max_nnz: usize) -> impl Strategy<Value = CooMatrix> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, -10.0f64..10.0), 1..max_nnz).prop_map(
            move |entries| {
                let mut coo = CooMatrix::new(n, n);
                for (r, c, v) in entries {
                    coo.push(r, c, v);
                }
                coo
            },
        )
    })
}

/// A random SPD-ish matrix (symmetric pattern, dominant diagonal) with a
/// full diagonal — what the partition/halo machinery expects.
fn arb_spd(max_n: usize) -> impl Strategy<Value = CsrMatrix> {
    (4usize..max_n, any::<u64>())
        .prop_map(|(n, seed)| graphene::sparse::gen::random_spd(n, 5, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coo_csr_preserves_sums(coo in arb_coo(30, 120)) {
        let csr = coo.to_csr();
        // Row sums must match the triplet sums.
        let mut want = vec![0.0f64; coo.nrows];
        for &(r, _, v) in &coo.entries {
            want[r as usize] += v;
        }
        for i in 0..csr.nrows {
            let (_, vals) = csr.row(i);
            let got: f64 = vals.iter().sum();
            prop_assert!((got - want[i]).abs() < 1e-9);
        }
        // Columns sorted, in range.
        for i in 0..csr.nrows {
            let (cols, _) = csr.row(i);
            for w in cols.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            if let Some(&c) = cols.last() {
                prop_assert!((c as usize) < csr.ncols);
            }
        }
    }

    #[test]
    fn transpose_is_involution(coo in arb_coo(25, 100)) {
        let a = coo.to_csr();
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn spmv_is_linear(coo in arb_coo(20, 60), seed in any::<u64>()) {
        let a = coo.to_csr();
        let x = graphene::sparse::gen::random_vector(a.ncols, seed);
        let y = graphene::sparse::gen::random_vector(a.ncols, seed ^ 1);
        let axy = a.spmv_alloc(&x.iter().zip(&y).map(|(x, y)| x + y).collect::<Vec<_>>());
        let ax = a.spmv_alloc(&x);
        let ay = a.spmv_alloc(&y);
        for i in 0..a.nrows {
            prop_assert!((axy[i] - ax[i] - ay[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn matrix_market_roundtrip(coo in arb_coo(20, 80)) {
        let a = coo.to_csr();
        let mut buf = Vec::new();
        graphene::sparse::io::write_matrix_market(&mut buf, &a).unwrap();
        let back = graphene::sparse::io::read_matrix_market(&buf[..]).unwrap();
        prop_assert_eq!(a, back);
    }

    #[test]
    fn partition_covers_exactly(a in arb_spd(60), parts in 1usize..9) {
        let p = Partition::balanced_by_nnz(&a, parts);
        prop_assert!(p.validate());
        prop_assert_eq!(p.num_rows(), a.nrows);
        // Every row owned exactly once is implied by validate(); owners in
        // range:
        for &o in &p.owner {
            prop_assert!((o as usize) < parts);
        }
    }

    #[test]
    fn all_partition_families_validate_and_leave_no_part_empty(
        a in arb_spd(60),
        parts in 1usize..9,
    ) {
        // Whenever num_parts <= num_rows, every family must cover all rows
        // exactly once AND give every part at least one row (the
        // balanced_by_nnz empty-tail regression).
        prop_assume!(parts <= a.nrows);
        for (name, p) in [
            ("contiguous", Partition::contiguous(a.nrows, parts)),
            ("balanced_by_nnz", Partition::balanced_by_nnz(&a, parts)),
        ] {
            prop_assert!(p.validate(), "{}: validate() failed", name);
            prop_assert_eq!(p.num_rows(), a.nrows);
            prop_assert_eq!(p.num_parts(), parts);
            for (i, rows) in p.parts.iter().enumerate() {
                prop_assert!(!rows.is_empty(), "{}: part {} of {} empty", name, i, parts);
            }
        }
    }

    #[test]
    fn grid_partitions_validate_and_leave_no_part_empty(
        nx in 2usize..7, ny in 2usize..7, nz in 2usize..7,
        px in 1usize..4, py in 1usize..4, pz in 1usize..4,
    ) {
        prop_assume!(px <= nx && py <= ny && pz <= nz);
        let grid = graphene::sparse::gen::Grid3 { nx, ny, nz };
        let parts = px * py * pz;
        // (px, py, pz) is a witness that `parts` factors within the grid,
        // so the exhaustive auto search must succeed too.
        let p = Partition::try_grid_3d_auto(grid, parts)
            .expect("feasible part count must factor");
        prop_assert!(p.validate());
        prop_assert_eq!(p.num_rows(), grid.num_cells());
        prop_assert_eq!(p.num_parts(), parts);
        for (i, rows) in p.parts.iter().enumerate() {
            prop_assert!(!rows.is_empty(), "grid part {} of {} empty", i, parts);
        }
    }

    #[test]
    fn halo_invariants(a in arb_spd(50), parts in 2usize..6) {
        let p = Partition::balanced_by_nnz(&a, parts);
        let h = HaloDecomposition::build(&a, &p);
        // 1. Consistent ordering between source and destinations.
        for r in &h.regions {
            prop_assert!(!r.is_empty());
            prop_assert!(!r.consumers.contains(&r.owner));
            let owner = &h.layouts[r.owner];
            prop_assert_eq!(&owner.owned[r.src_start..r.src_start + r.len()], &r.cells[..]);
        }
        // 2. Exchange + local SpMV == global SpMV.
        let x = graphene::sparse::gen::random_vector(a.nrows, 5);
        let want = a.spmv_alloc(&x);
        let mats = h.local_matrices(&a);
        let mut locals: Vec<Vec<f64>> = h
            .layouts
            .iter()
            .map(|l| {
                let mut v: Vec<f64> = l.owned.iter().map(|&r| x[r]).collect();
                v.extend(std::iter::repeat(0.0).take(l.halo.len()));
                v
            })
            .collect();
        h.exchange(&mut locals);
        let mut ys = Vec::new();
        for (t, lm) in mats.iter().enumerate() {
            let mut y = vec![0.0; lm.a.nrows];
            lm.a.spmv(&locals[t], &mut y);
            ys.push(y);
        }
        let got = h.gather(&ys);
        for i in 0..a.nrows {
            prop_assert!((got[i] - want[i]).abs() < 1e-9, "{} vs {}", got[i], want[i]);
        }
    }

    #[test]
    fn level_sets_valid_for_any_matrix(a in arb_spd(60)) {
        for sweep in [Sweep::Forward, Sweep::Backward] {
            let ls = LevelSets::analyze(&a, sweep);
            prop_assert!(ls.validate(&a));
            let total: usize = ls.levels.iter().map(Vec::len).sum();
            prop_assert_eq!(total, a.nrows);
        }
    }

    #[test]
    fn symmetric_permutation_preserves_spectrum_proxy(a in arb_spd(30), seed in any::<u64>()) {
        // Frobenius norm and trace are invariant under symmetric
        // permutation.
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut perm: Vec<usize> = (0..a.nrows).collect();
        perm.shuffle(&mut rand::rngs::SmallRng::seed_from_u64(seed));
        let b = a.permute_symmetric(&perm);
        prop_assert!((a.fro_norm() - b.fro_norm()).abs() < 1e-9);
        let tr_a: f64 = a.diagonal().iter().sum();
        let tr_b: f64 = b.diagonal().iter().sum();
        prop_assert!((tr_a - tr_b).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------
// device: randomised elementwise programs match host evaluation
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn device_elementwise_matches_host(
        xs in proptest::collection::vec(-100.0f64..100.0, 6..40),
        scale in -4.0f64..4.0,
        tiles in 1usize..5,
    ) {
        use graphene::dsl::prelude::*;
        let n = xs.len();
        let mut ctx = DslCtx::new(IpuModel::tiny(tiles));
        let x = ctx.vector("x", DType::F32, n, tiles);
        let y = ctx.materialize((x * scale as f32 + 1.0f32).abs());
        let mut e = ctx.build_engine().unwrap();
        e.write_tensor(x.id, &xs);
        e.run();
        let got = e.read_tensor(y.id);
        for (g, xv) in got.iter().zip(&xs) {
            let want = (*xv as f32 * scale as f32 + 1.0).abs() as f64;
            prop_assert!((g - want).abs() < 1e-5, "{g} vs {want}");
        }
    }

    #[test]
    fn device_reduce_matches_host(
        xs in proptest::collection::vec(-10.0f64..10.0, 4..64),
        tiles in 1usize..6,
    ) {
        use graphene::dsl::prelude::*;
        let n = xs.len();
        let mut ctx = DslCtx::new(IpuModel::tiny(tiles));
        let x = ctx.vector("x", DType::F32, n, tiles);
        let s = ctx.reduce(x * x);
        let mut e = ctx.build_engine().unwrap();
        e.write_tensor(x.id, &xs);
        e.run();
        let want: f64 = xs.iter().map(|v| {
            let f = *v as f32;
            (f * f) as f64
        }).sum();
        let got = e.read_scalar(s.id);
        prop_assert!((got - want).abs() <= want.abs() * 1e-5 + 1e-5, "{got} vs {want}");
    }
}
