//! Full double-word ULP audit (its own test target so the sweep can be
//! scaled independently via `GRAPHENE_VERIFY_CASES`).
//!
//! Asserts the Joldes et al. per-operation error bounds and the
//! normalisation invariant over randomised and adversarial operands; see
//! `verify::ulp_audit` for the methodology.

use verify::ulp_audit::{
    audit_add, audit_div, audit_mul, audit_normalisation_extremes, audit_sloppy, audit_sqrt, U,
};

fn cases() -> u32 {
    verify::cases_from_env(4000)
}

#[test]
fn add_meets_joldes_bounds() {
    let audit = audit_add(cases());
    assert!(audit.checked >= 3 * cases() as u64);
    // The sweep should actually exercise error-bearing cases, not only
    // exact ones.
    assert!(audit.max_rel > 0.0, "add audit saw no rounding at all");
}

#[test]
fn mul_meets_joldes_bounds() {
    let audit = audit_mul(cases());
    assert!(audit.max_rel <= 5.0 * U * U + 1e-15);
}

#[test]
fn div_meets_joldes_bounds() {
    let audit = audit_div(cases());
    assert!(audit.max_rel <= 15.0 * U * U + 1e-15);
}

#[test]
fn sqrt_meets_error_bound() {
    let audit = audit_sqrt(cases());
    assert!(audit.max_rel <= 4.0 * U * U + 1e-15);
}

#[test]
fn sloppy_add_is_bounded_same_sign_and_catastrophic_on_cancellation() {
    let (same_sign, worst_cancelling) = audit_sloppy(cases());
    assert!(same_sign.max_rel <= 3.2 * U * U + 1e-15);
    // On cancelling operands the sloppy variant rounds the surviving low
    // words at full f32 precision — error ~u, orders of magnitude above
    // the u²-level bound the accurate variant keeps on the same operands.
    assert!(
        worst_cancelling > 1e-9,
        "sloppy add unexpectedly accurate on cancelling operands: {worst_cancelling:.3e}"
    );
}

#[test]
fn extreme_operands_stay_normalised() {
    let checked = audit_normalisation_extremes();
    assert!(checked > 300, "extreme-operand audit shrank to {checked} checks");
}
