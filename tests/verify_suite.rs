//! The differential-oracle verification suite (tier-1).
//!
//! Every solver configuration in
//! `graphene_core::config::verification_suite()` is executed on the
//! simulated IPU and compared against a host-side dense f64 LU oracle on
//! at least three generated matrix families; simulator invariants
//! (double-run bit determinism, label balance, exchange-byte
//! conservation) and MatrixMarket round-trips ride along.
//!
//! Case counts for the randomised properties scale with
//! `GRAPHENE_VERIFY_CASES` (default keeps `cargo test -q` within its
//! budget); the differential matrix set is fixed.

use std::rc::Rc;

use graphene::graphene_core::config::SolverConfig;
use graphene::sparse::gen::{poisson_2d_5pt, rhs_for_ones};
use graphene::sparse::io::{read_matrix_market, write_matrix_market_with, MmSymmetry};
use verify::differential::{all_case_names, check_cases, run_two_grid};
use verify::generators;
use verify::invariants::{
    assert_deterministic, assert_executor_equivalence, assert_executor_equivalence_with,
    audit_exchange_conservation,
};
use verify::plan_equiv::assert_plan_equivalence;
use verify::resilience::{
    assert_fault_trichotomy, assert_faulted_determinism, assert_zero_overhead_when_off,
};

// ---- differential suite, sharded for test-runner parallelism ----------

const KRYLOV: &[&str] = &["cg", "cg+ilu0", "bicgstab", "bicgstab+ilu0", "bicgstab+gauss_seidel"];
const SMOOTHERS: &[&str] = &["jacobi", "gauss_seidel", "chebyshev"];
const MPIR: &[&str] = &["mpir-working", "mpir-double_word", "mpir-emulated_f64"];

#[test]
fn differential_krylov() {
    let outcomes = check_cases(KRYLOV);
    assert!(outcomes.len() >= KRYLOV.len() * 3);
}

#[test]
fn differential_smoothers() {
    let outcomes = check_cases(SMOOTHERS);
    assert!(outcomes.len() >= SMOOTHERS.len() * 3);
}

#[test]
fn differential_mpir() {
    let outcomes = check_cases(MPIR);
    assert!(outcomes.len() >= MPIR.len() * 3);
    // The extended-precision configs must actually beat the working-
    // precision f32 floor (the paper's central claim, Figs 9/10).
    for o in &outcomes {
        if o.case == "mpir-double_word" || o.case == "mpir-emulated_f64" {
            assert!(o.residual < 1e-10, "[{}/{}] residual {:.3e}", o.case, o.family, o.residual);
        }
    }
}

/// The shards above must cover the whole suite: a configuration added to
/// `verification_suite()` without a home here fails this test.
#[test]
fn differential_shards_cover_suite() {
    let mut sharded: Vec<&str> = [KRYLOV, SMOOTHERS, MPIR].concat();
    sharded.sort_unstable();
    let mut all = all_case_names();
    all.sort_unstable();
    assert_eq!(sharded, all, "suite entries not covered by a differential shard");
}

/// Multigrid is structured-grid-only and not expressible as a
/// `SolverConfig`; verify the hand-driven V(2,2) two-grid cycle against
/// the same oracle.
#[test]
fn differential_two_grid() {
    let (residual, forward) = run_two_grid(6);
    assert!(residual < 5e-3, "two-grid residual {residual:.3e}");
    assert!(forward < 5e-2, "two-grid forward error {forward:.3e}");
}

// ---- simulator invariants ---------------------------------------------

#[test]
fn double_runs_are_bit_identical() {
    let a = Rc::new(poisson_2d_5pt(8, 8, 1.0));
    let b = rhs_for_ones(&a);
    for cfg in [
        SolverConfig::BiCgStab {
            max_iters: 30,
            rel_tol: 1e-6,
            precond: Some(Box::new(SolverConfig::Ilu0 {})),
        },
        SolverConfig::paper_default(20, 3, 1e-12),
    ] {
        let rep = assert_deterministic(a.clone(), &b, &cfg);
        assert!(rep.device_cycles > 0);
    }
}

/// Every configuration in the verification suite must be bit-identical
/// (solution tensors) and cycle-identical (device cycles, per-phase and
/// per-label splits, per-tile busy time) under the sequential and the
/// tile-parallel host executor.
#[test]
fn executors_are_equivalent_across_suite() {
    let a = Rc::new(poisson_2d_5pt(8, 8, 1.0));
    let b = rhs_for_ones(&a);
    for case in graphene::graphene_core::config::verification_suite() {
        let eq = assert_executor_equivalence(a.clone(), &b, &case.config);
        assert!(eq.device_cycles > 0, "[{}] no device cycles recorded", case.name);
    }
}

/// Every configuration in the verification suite must be bit-identical
/// (solution tensors) and cycle-identical (device cycles, per-phase and
/// per-label splits, per-tile busy time, histories) across the optimised
/// plan, the unoptimised plan (`GRAPHENE_NO_OPT=1`) and the legacy
/// tree-walking interpreter — the graph compiler's passes only remove
/// host dispatch overhead, never simulated device work.
#[test]
fn plans_are_equivalent_across_suite() {
    let a = Rc::new(poisson_2d_5pt(8, 8, 1.0));
    let b = rhs_for_ones(&a);
    for case in graphene::graphene_core::config::verification_suite() {
        let eq = assert_plan_equivalence(a.clone(), &b, &case.config);
        assert!(eq.device_cycles > 0, "[{}] no device cycles recorded", case.name);
        assert!(
            eq.optimised_steps <= eq.unoptimised_steps,
            "[{}] optimisation grew the plan",
            case.name
        );
    }
}

/// Auto-tuning must preserve both halves of the determinism contract: a
/// plan-cache hit reproduces the cold-tune solve bit for bit, and the
/// tuned configuration stays bit-and-cycle-identical across all four host
/// executors.
#[test]
fn tuned_solves_hit_the_cache_and_stay_executor_equivalent() {
    use graphene::graphene_core::runner::{solve_or_panic, SolveOptions, SolveResult};

    let a = Rc::new(poisson_2d_5pt(8, 8, 1.0));
    let b = rhs_for_ones(&a);
    let cfg = SolverConfig::BiCgStab {
        max_iters: 50,
        rel_tol: 1e-6,
        precond: Some(Box::new(SolverConfig::Ilu0 {})),
    };
    let cache = std::env::temp_dir().join(format!("graphene-verify-tune-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);
    let base = SolveOptions {
        model: graphene::dsl::prelude::IpuModel::tiny(4),
        tiles: Some(4),
        tune: Some(true),
        tune_cache: Some(cache.clone()),
        ..SolveOptions::default()
    };

    let pass = |r: &SolveResult, key: &str| {
        r.report
            .compile
            .as_ref()
            .and_then(|c| c.pass("graphene-tune"))
            .expect("tuned solve stamps graphene-tune")
            .counter(key)
    };
    // Cold tune, then a warm solve that must come from the cache with the
    // search skipped entirely...
    let cold = solve_or_panic(a.clone(), &b, &cfg, &base);
    assert_eq!(pass(&cold, "cache_hit"), 0);
    assert!(pass(&cold, "candidates_scored") > 0);
    let warm = solve_or_panic(a.clone(), &b, &cfg, &base);
    assert_eq!(pass(&warm, "cache_hit"), 1);
    assert_eq!(pass(&warm, "candidates_scored"), 0);
    // ...and be bit-identical to it.
    let cb: Vec<u64> = cold.x.iter().map(|v| v.to_bits()).collect();
    let wb: Vec<u64> = warm.x.iter().map(|v| v.to_bits()).collect();
    assert_eq!(cb, wb, "cache hit diverged from the cold tune");
    assert_eq!(cold.stats.device_cycles(), warm.stats.device_cycles());

    // The tuned (cache-hit) configuration keeps the four-way executor
    // equivalence contract.
    let eq = assert_executor_equivalence_with(a, &b, &cfg, &base);
    assert!(eq.device_cycles > 0);
    let _ = std::fs::remove_dir_all(&cache);
}

// ---- fault-injection resilience ---------------------------------------

/// Under seeded single-fault plans the outcome is exactly one of
/// {converged, recovered, structured error} — the accepted residual is
/// recomputed independently in f64, so a silently-corrupted answer cannot
/// pass. Case count scales with `GRAPHENE_VERIFY_CASES`.
#[test]
fn seeded_faults_never_yield_silently_wrong_answers() {
    let a = Rc::new(poisson_2d_5pt(8, 8, 1.0));
    let b = rhs_for_ones(&a);
    let cfg = SolverConfig::BiCgStab {
        max_iters: 200,
        rel_tol: 1e-6,
        precond: Some(Box::new(SolverConfig::Ilu0 {})),
    };
    let cases = verify::cases_from_env(12) as u64;
    let rep = assert_fault_trichotomy(a, &b, &cfg, 1e-6, 1..=cases);
    assert_eq!(rep.cases as u64, cases);
    assert!(rep.faults_fired > 0, "sweep never fired a fault: {rep:?}");
}

/// A faulted solve replays bit-identically across runs and across both
/// host executors, and the machinery costs nothing when off.
#[test]
fn faulted_solves_are_deterministic_and_free_when_off() {
    let a = Rc::new(poisson_2d_5pt(8, 8, 1.0));
    let b = rhs_for_ones(&a);
    let cfg = SolverConfig::BiCgStab {
        max_iters: 200,
        rel_tol: 1e-6,
        precond: Some(Box::new(SolverConfig::Ilu0 {})),
    };
    assert_faulted_determinism(
        a.clone(),
        &b,
        &cfg,
        "seed=5;n=2;classes=flip+xflip+xdrop+stall;smax=250;wmax=16",
    );
    assert_faulted_determinism(a.clone(), &b, &cfg, "flip@s60.t1:w5.b30;stall@s10.t0:c500");
    assert_zero_overhead_when_off(a, &b, &cfg);
}

#[test]
fn exchange_bytes_are_conserved() {
    let a = Rc::new(poisson_2d_5pt(8, 8, 1.0));
    let b = rhs_for_ones(&a);
    for cfg in [
        SolverConfig::BiCgStab { max_iters: 10, rel_tol: 0.0, precond: None },
        SolverConfig::Jacobi { sweeps: 12, omega: 2.0 / 3.0 },
        SolverConfig::GaussSeidel { sweeps: 6, symmetric: true, rel_tol: 0.0 },
    ] {
        let audit = audit_exchange_conservation(a.clone(), &b, &cfg);
        assert!(audit.exchange_steps > 0);
        assert_eq!(audit.traced_bytes, audit.stats_bytes);
    }
}

// ---- MatrixMarket round-trips over generated matrices -----------------

fn roundtrip(a: &graphene::sparse::formats::CsrMatrix, symmetry: MmSymmetry) {
    let mut buf = Vec::new();
    write_matrix_market_with(&mut buf, a, symmetry).expect("matrix matches requested symmetry");
    let back = read_matrix_market(&buf[..]).expect("written file parses");
    assert_eq!(a, &back, "round-trip through {symmetry:?} storage changed the matrix");
}

#[test]
fn matrix_market_roundtrips_general() {
    let cases = verify::cases_from_env(12) as u64;
    for seed in 0..cases {
        let a =
            generators::random_general(6 + (seed as usize % 9), 5 + (seed as usize % 7), 24, seed);
        roundtrip(&a, MmSymmetry::General);
    }
}

#[test]
fn matrix_market_roundtrips_symmetric() {
    let cases = verify::cases_from_env(12) as u64;
    for seed in 0..cases {
        let a = generators::random_symmetric(10 + (seed as usize % 8), 3, seed);
        roundtrip(&a, MmSymmetry::Symmetric);
    }
}

#[test]
fn matrix_market_roundtrips_skew_symmetric() {
    let cases = verify::cases_from_env(12) as u64;
    for seed in 0..cases {
        let a = generators::random_skew(10 + (seed as usize % 8), 3, seed);
        roundtrip(&a, MmSymmetry::SkewSymmetric);
    }
}
